package analysis

import (
	"encoding/json"
	"testing"
)

func TestOutcome(t *testing.T) {
	if testing.Short() {
		t.Skip("full engine run")
	}
	ev, d := getShared(t)
	an := New(ev, d)
	out, err := an.Outcome(DefaultOutcomeConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Letters) != len(ev.Deployment.SortedLetters()) {
		t.Fatalf("letters = %d, want %d", len(out.Letters), len(ev.Deployment.SortedLetters()))
	}
	if out.MinEventAvailability < 0 || out.MinEventAvailability > 1 {
		t.Errorf("MinEventAvailability = %v out of range", out.MinEventAvailability)
	}
	if out.MeanEventAvailability < out.MinEventAvailability {
		t.Errorf("mean %v < min %v", out.MeanEventAvailability, out.MinEventAvailability)
	}
	// The Nov 2015 events hammer the targeted letters; some damage must be
	// visible at this scale, and spared letters must fare no worse than the
	// global minimum.
	if out.MinEventAvailability >= 1 {
		t.Error("no event damage observed at all")
	}
	if out.MaxRTTInflation < 1 {
		t.Errorf("MaxRTTInflation = %v < 1", out.MaxRTTInflation)
	}
	if out.RouteChanges <= 0 {
		t.Errorf("RouteChanges = %d, want > 0 (withdraw letters flap routes)", out.RouteChanges)
	}
	if out.User == nil {
		t.Fatal("User outcome missing with DefaultOutcomeConfig")
	}
	if out.User.CacheHitFrac <= 0 || out.User.CacheHitFrac >= 1 {
		t.Errorf("CacheHitFrac = %v, want in (0,1)", out.User.CacheHitFrac)
	}
	for name, lo := range out.Letters {
		if len(name) != 1 {
			t.Errorf("letter key %q not a single byte", name)
		}
		if lo.EventAvailability > lo.OverallAvailability+0.5 {
			t.Errorf("%s: event availability %v implausibly above overall %v", name, lo.EventAvailability, lo.OverallAvailability)
		}
	}
}

// TestOutcomeDeterministic pins the property the campaign ledger relies
// on: extracting the outcome twice from the same run yields byte-identical
// JSON, so a resumed campaign can reuse recorded outcomes.
func TestOutcomeDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full engine run")
	}
	ev, d := getShared(t)
	an := New(ev, d)
	a, err := an.Outcome(DefaultOutcomeConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	b, err := an.Outcome(DefaultOutcomeConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatalf("outcome not deterministic:\n%s\n%s", ja, jb)
	}
}
