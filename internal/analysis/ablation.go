package analysis

import (
	"fmt"

	"github.com/rootevent/anycastddos/internal/anycast"
	"github.com/rootevent/anycastddos/internal/core"
)

// PolicyAblationRow scores one deployment-wide policy over the full
// two-day event.
type PolicyAblationRow struct {
	Policy string
	// ServedLegitFrac is served / offered legitimate queries across the
	// attacked letters during event windows.
	ServedLegitFrac float64
	// WorstMinuteFrac is the worst single event minute.
	WorstMinuteFrac float64
	// RouteChangeCount is total BGP updates seen at the collectors.
	RouteChangeCount int
}

// PolicyAblation re-runs the full event simulation three times — the
// as-deployed policy mix, all-absorb, and all-withdraw — quantifying the
// trade-off the paper frames in §2.2 at the scale of the whole root
// system. Measurement campaigns are skipped; the simulation's own served
// counters are the metric.
func PolicyAblation(base core.Config) ([]PolicyAblationRow, error) {
	absorb := anycast.Absorb
	withdraw := anycast.Withdraw
	variants := []struct {
		name  string
		force *anycast.Policy
	}{
		{"as-deployed mix", nil},
		{"all-absorb", &absorb},
		{"all-withdraw", &withdraw},
	}
	var rows []PolicyAblationRow
	for _, v := range variants {
		cfg := base
		cfg.ForcePolicy = v.force
		ev, err := core.NewEvaluator(cfg)
		if err != nil {
			return nil, err
		}
		if err := ev.Run(); err != nil {
			return nil, err
		}
		row := PolicyAblationRow{Policy: v.name, WorstMinuteFrac: 1}
		var served, offered float64
		for _, l := range ev.Deployment.Letters {
			if !ev.Schedule().Targeted(l.Letter) {
				continue
			}
			legit, _, _, _, err := ev.LetterServedSeries(l.Letter)
			if err != nil {
				return nil, err
			}
			for m, v := range legit {
				if ev.Schedule().Active(m) < 0 {
					continue
				}
				served += v
				offered += l.NormalQPS
				if frac := v / l.NormalQPS; frac < row.WorstMinuteFrac {
					row.WorstMinuteFrac = frac
				}
			}
		}
		if offered > 0 {
			row.ServedLegitFrac = served / offered
		}
		row.RouteChangeCount = len(ev.Collector.Updates())
		rows = append(rows, row)
	}
	if len(rows) != 3 {
		return nil, fmt.Errorf("analysis: ablation produced %d rows", len(rows))
	}
	return rows, nil
}
