package analysis

import (
	"testing"

	"github.com/rootevent/anycastddos/internal/core"
	"github.com/rootevent/anycastddos/internal/topo"
)

func ablationConfig() core.Config {
	cfg := core.DefaultConfig(31)
	cfg.Topology = &topo.Config{Tier1s: 6, Tier2s: 60, Stubs: 700, Seed: 31}
	cfg.VPs = 50 // no measurement campaign; population barely matters
	cfg.BotnetOrigins = 30
	return cfg
}

func TestPolicyAblation(t *testing.T) {
	rows, err := PolicyAblation(ablationConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]PolicyAblationRow{}
	for _, r := range rows {
		byName[r.Policy] = r
		if r.ServedLegitFrac <= 0 || r.ServedLegitFrac > 1 {
			t.Errorf("%s served frac = %v", r.Policy, r.ServedLegitFrac)
		}
		if r.WorstMinuteFrac > r.ServedLegitFrac+1e-9 {
			t.Errorf("%s worst %v above mean %v", r.Policy, r.WorstMinuteFrac, r.ServedLegitFrac)
		}
	}
	// All-absorb makes no route changes; all-withdraw churns the most.
	if byName["all-absorb"].RouteChangeCount != 0 {
		t.Errorf("all-absorb route changes = %d", byName["all-absorb"].RouteChangeCount)
	}
	if byName["all-withdraw"].RouteChangeCount <= byName["as-deployed mix"].RouteChangeCount {
		t.Errorf("all-withdraw churn %d <= mix %d",
			byName["all-withdraw"].RouteChangeCount, byName["as-deployed mix"].RouteChangeCount)
	}
	// The deployed mix should be competitive with the best pure policy —
	// operators chose their policies for a reason.
	best := byName["all-absorb"].ServedLegitFrac
	if byName["all-withdraw"].ServedLegitFrac > best {
		best = byName["all-withdraw"].ServedLegitFrac
	}
	if byName["as-deployed mix"].ServedLegitFrac < best-0.25 {
		t.Errorf("mix %v far below best pure policy %v",
			byName["as-deployed mix"].ServedLegitFrac, best)
	}
	t.Logf("ablation: %+v", rows)
}
