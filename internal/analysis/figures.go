package analysis

import (
	"fmt"

	"github.com/rootevent/anycastddos/internal/atlas"
	"github.com/rootevent/anycastddos/internal/attack"
	"github.com/rootevent/anycastddos/internal/stats"
)

// Figure3 returns per-letter series of VPs with successful queries in
// 10-minute bins. A-Root, probed every 30 minutes, is rescaled by the
// cadence ratio so its curve is comparable, as the paper does.
func (a *Analyzer) Figure3() (map[byte]*stats.Series, error) {
	out := make(map[byte]*stats.Series)
	for _, lb := range a.ev.Deployment.SortedLetters() {
		s, err := a.d.SuccessSeries(lb)
		if err != nil {
			return nil, err
		}
		if lb == 'A' {
			// Only ~BinMinutes/30 of VPs probe A inside any bin.
			scale := 30.0 / float64(a.d.BinMinutes)
			s, err = s.Normalize(1 / scale)
			if err != nil {
				return nil, err
			}
		}
		out[lb] = s
	}
	return out, nil
}

// Figure4 returns per-letter median RTT series for successful queries.
func (a *Analyzer) Figure4() (map[byte]*stats.Series, error) {
	out := make(map[byte]*stats.Series)
	for _, lb := range a.ev.Deployment.SortedLetters() {
		if lb == 'A' {
			continue // probed too rarely for RTT dynamics
		}
		s, err := a.d.MedianRTTSeries(lb)
		if err != nil {
			return nil, err
		}
		out[lb] = s
	}
	return out, nil
}

// Figure5Row summarizes one site's catchment swing over the two days.
type Figure5Row struct {
	Site           string
	SiteIndex      int
	MedianVPs      float64
	MinNorm        float64 // min VPs / median
	MaxNorm        float64 // max VPs / median
	BelowThreshold bool    // median < 20 VPs (unstable, shaded in the paper)
}

// StableVPThreshold is the paper's minimum median catchment for a site to
// be considered reliably observable (§2.4.1).
const StableVPThreshold = 20

// Figure5 computes min/max catchment sizes normalized to the median for
// every site of a letter, ordered by median (Figure 5 shows E and K).
func (a *Analyzer) Figure5(letter byte) ([]Figure5Row, error) {
	sites := a.ev.LetterSites(letter)
	if sites == nil {
		return nil, fmt.Errorf("analysis: unknown letter %c", letter)
	}
	order, medians, err := sortedSiteIndexesByMedian(a.d, letter, len(sites))
	if err != nil {
		return nil, err
	}
	var rows []Figure5Row
	for _, si := range order {
		s, err := a.d.SiteSeries(letter, si)
		if err != nil {
			return nil, err
		}
		row := Figure5Row{
			Site: sites[si].Name(), SiteIndex: si,
			MedianVPs:      medians[si],
			BelowThreshold: medians[si] < StableVPThreshold,
		}
		min, _, _ := s.Min()
		max, _, _ := s.Max()
		if medians[si] > 0 {
			row.MinNorm = min / medians[si]
			row.MaxNorm = max / medians[si]
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure6Site is one mini-plot of Figure 6: a site's full catchment time
// series normalized to its median.
type Figure6Site struct {
	Site      string
	SiteIndex int
	MedianVPs float64
	Norm      *stats.Series // VP count / median per bin
	// CriticalBins marks bins where reachability fell below half the
	// median (the paper's red "critical moments").
	CriticalBins []int
}

// Figure6 returns the per-site catchment dynamics for one letter, ordered
// by median.
func (a *Analyzer) Figure6(letter byte) ([]Figure6Site, error) {
	sites := a.ev.LetterSites(letter)
	if sites == nil {
		return nil, fmt.Errorf("analysis: unknown letter %c", letter)
	}
	order, medians, err := sortedSiteIndexesByMedian(a.d, letter, len(sites))
	if err != nil {
		return nil, err
	}
	var out []Figure6Site
	for _, si := range order {
		s, err := a.d.SiteSeries(letter, si)
		if err != nil {
			return nil, err
		}
		entry := Figure6Site{Site: sites[si].Name(), SiteIndex: si, MedianVPs: medians[si]}
		if medians[si] > 0 {
			norm, err := s.Normalize(medians[si])
			if err != nil {
				return nil, err
			}
			entry.Norm = norm
			for b, v := range norm.Values {
				if v < 0.5 {
					entry.CriticalBins = append(entry.CriticalBins, b)
				}
			}
		} else {
			entry.Norm = s
		}
		out = append(out, entry)
	}
	return out, nil
}

// Figure7 returns median-RTT series for the selected K-Root sites the
// paper highlights (AMS, NRT, LHR, FRA), keyed by site name.
func (a *Analyzer) Figure7(letter byte, codes []string) (map[string]*stats.Series, error) {
	l, ok := a.ev.Deployment.Letter(letter)
	if !ok {
		return nil, fmt.Errorf("analysis: unknown letter %c", letter)
	}
	out := make(map[string]*stats.Series)
	for _, code := range codes {
		site, ok := l.SiteByCode(code)
		if !ok {
			return nil, fmt.Errorf("analysis: no site %c-%s", letter, code)
		}
		for si, s := range l.Sites {
			if s == site {
				series, err := a.d.SiteRTTSeries(letter, si)
				if err != nil {
					return nil, err
				}
				out[site.Name()] = series
			}
		}
	}
	return out, nil
}

// Figure8 counts site flips per letter per bin: a VP flips when its
// resolved site differs from the previous bin (both successful).
func (a *Analyzer) Figure8() (map[byte]*stats.Series, error) {
	d := a.d
	out := make(map[byte]*stats.Series)
	for _, lb := range a.ev.Deployment.SortedLetters() {
		if lb == 'A' {
			continue
		}
		if !d.HasLetter(lb) {
			continue
		}
		s := stats.NewSeries(fmt.Sprintf("flips-%c", lb), d.StartMinute, d.BinMinutes, d.Bins)
		rows, err := d.Rows(lb)
		if err != nil {
			return nil, err
		}
		for rows.Next() {
			status, site := rows.Status(), rows.Site()
			prev := int16(atlas.NoSite)
			havePrev := false
			for b, st := range status {
				if st != atlas.OK {
					continue
				}
				if havePrev && site[b] != prev {
					s.Values[b]++
				}
				prev = site[b]
				havePrev = true
			}
		}
		out[lb] = s
	}
	return out, nil
}

// Figure9 returns BGP route-change series per letter from the collector
// mesh.
func (a *Analyzer) Figure9() map[byte]*stats.Series {
	out := make(map[byte]*stats.Series)
	for _, lb := range a.ev.Deployment.SortedLetters() {
		out[lb] = a.ev.Collector.UpdateSeries(lb, 0, 10, a.ev.Cfg.Minutes/10)
	}
	return out
}

// FlipFlow summarizes where one site's VPs went during an event window
// (Figure 10): destination site name -> fraction of movers.
type FlipFlow struct {
	FromSite string
	Movers   int
	Dest     map[string]float64
	// Returned is the fraction of movers back at their original site
	// after the event.
	Returned float64
}

// Figure10 computes flip flows out of the given sites during an event.
func (a *Analyzer) Figure10(letter byte, codes []string, eventIdx int) ([]FlipFlow, error) {
	d := a.d
	l, ok := a.ev.Deployment.Letter(letter)
	if !ok {
		return nil, fmt.Errorf("analysis: unknown letter %c", letter)
	}
	events := a.ev.Schedule().Events
	if eventIdx < 0 || eventIdx >= len(events) {
		return nil, fmt.Errorf("analysis: bad event %d", eventIdx)
	}
	event := events[eventIdx]
	geom := stats.NewSeries("", d.StartMinute, d.BinMinutes, d.Bins)
	preBin, okb := geom.BinFor(event.StartMinute - 30)
	if !okb {
		return nil, fmt.Errorf("analysis: event outside dataset")
	}
	startBin, _ := geom.BinFor(event.StartMinute)
	endBin, okE := geom.BinFor(event.EndMinute - 1)
	if !okE {
		endBin = d.Bins - 1
	}
	postBin, okc := geom.BinFor(event.EndMinute + 120)
	if !okc {
		postBin = d.Bins - 1
	}

	siteIdx := func(code string) int {
		for si, s := range l.Sites {
			if s.Code == code {
				return si
			}
		}
		return -1
	}
	var flows []FlipFlow
	for _, code := range codes {
		home := siteIdx(code)
		if home < 0 {
			return nil, fmt.Errorf("analysis: no site %c-%s", letter, code)
		}
		flow := FlipFlow{FromSite: fmt.Sprintf("%c-%s", letter, code), Dest: map[string]float64{}}
		returned := 0
		rows, err := d.Rows(letter)
		if err != nil {
			return nil, err
		}
		for rows.Next() {
			status, site := rows.Status(), rows.Site()
			if status[preBin] != atlas.OK || int(site[preBin]) != home {
				continue
			}
			// A mover spent at least one in-event bin at another site;
			// its destination is where it spent the most bins (flaps
			// can bounce VPs between sites within one event).
			away := map[int16]int{}
			for b := startBin; b <= endBin; b++ {
				if status[b] == atlas.OK && int(site[b]) != home {
					away[site[b]]++
				}
			}
			if len(away) == 0 {
				continue
			}
			best, bestN := int16(-1), 0
			for site, n := range away {
				if n > bestN || (n == bestN && site < best) {
					best, bestN = site, n
				}
			}
			flow.Movers++
			flow.Dest[l.Sites[best].Name()]++
			if status[postBin] == atlas.OK && int(site[postBin]) == home {
				returned++
			}
		}
		for k := range flow.Dest {
			flow.Dest[k] /= float64(flow.Movers)
		}
		if flow.Movers > 0 {
			flow.Returned = float64(returned) / float64(flow.Movers)
		}
		flows = append(flows, flow)
	}
	return flows, nil
}

// RasterRow is one VP's site choices over raw (probe-cadence) bins,
// rendered as bytes: 'L' home site 1, 'F' home site 2, 'A' the main
// overflow site, 'o' other site, '.' no response.
type RasterRow struct {
	VP    atlas.VPID
	Cells []byte
}

// Figure11 samples VPs whose pre-event home is one of the two focus sites
// and renders their per-probe site raster, as in the 300-VP panel of
// Figure 11 (home1='L'/K-LHR, home2='F'/K-FRA, overflow='A'/K-AMS).
func (a *Analyzer) Figure11(letter byte, home1, home2, overflow string, maxVPs int) ([]RasterRow, error) {
	d := a.d
	if !d.HasRaw(letter) {
		return nil, fmt.Errorf("analysis: no raw data for %c", letter)
	}
	l, _ := a.ev.Deployment.Letter(letter)
	idx := func(code string) int16 {
		for si, s := range l.Sites {
			if s.Code == code {
				return int16(si)
			}
		}
		return -1
	}
	h1, h2, ov := idx(home1), idx(home2), idx(overflow)
	if h1 < 0 || h2 < 0 || ov < 0 {
		return nil, fmt.Errorf("analysis: unknown focus sites")
	}
	// Home = raw site shortly before the first event.
	firstStart := attack.Event1Start
	if evs := a.ev.Schedule().Events; len(evs) > 0 {
		firstStart = evs[0].StartMinute
	}
	preRaw := (firstStart - 30) / d.RawBinMinutes
	var rows []RasterRow
	if preRaw < 0 || preRaw >= d.RawBins {
		return rows, nil
	}
	raw, err := d.RawRows(letter)
	if err != nil {
		return nil, err
	}
	for raw.Next() {
		if len(rows) >= maxVPs {
			break
		}
		status := raw.Status()
		if status[preRaw] != atlas.OK {
			continue
		}
		if pre := raw.Site(preRaw); pre != h1 && pre != h2 {
			continue
		}
		row := RasterRow{VP: raw.VP(), Cells: make([]byte, d.RawBins)}
		for rb := range status {
			switch {
			case status[rb] != atlas.OK:
				row.Cells[rb] = '.'
			case raw.Site(rb) == h1:
				row.Cells[rb] = 'L'
			case raw.Site(rb) == h2:
				row.Cells[rb] = 'F'
			case raw.Site(rb) == ov:
				row.Cells[rb] = 'A'
			default:
				row.Cells[rb] = 'o'
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RasterGroup classifies one VP's behaviour through an event, following
// the four groups the paper reads off Figure 11b (§3.4.2).
type RasterGroup uint8

// The §3.4.2 behaviour groups.
const (
	// GroupStuck VPs stay at their home site and mostly fail — the
	// degraded-absorbing peering relationship ("stuck" clients).
	GroupStuck RasterGroup = iota
	// GroupFlipReturn VPs shift away during the event and return after.
	GroupFlipReturn
	// GroupFlipStay VPs shift away and remain at the new site.
	GroupFlipStay
	// GroupUnaffected VPs keep their home site with mostly successful
	// queries throughout.
	GroupUnaffected
)

// String names the group.
func (g RasterGroup) String() string {
	switch g {
	case GroupStuck:
		return "stuck-failing"
	case GroupFlipReturn:
		return "flip-and-return"
	case GroupFlipStay:
		return "flip-and-stay"
	case GroupUnaffected:
		return "unaffected"
	default:
		return fmt.Sprintf("RasterGroup(%d)", uint8(g))
	}
}

// ClassifyRaster buckets raster rows into the §3.4.2 groups for the given
// event of the analyzer's simulated schedule.
func (a *Analyzer) ClassifyRaster(rows []RasterRow, eventIdx int) (map[RasterGroup]int, error) {
	return ClassifyRaster(rows, a.d, a.ev.Schedule(), eventIdx)
}

// ClassifyRaster buckets raster rows into the §3.4.2 groups for one event
// window. Cells: home sites are 'L'/'F', others 'A'/'o', failures '.'.
// A nil schedule uses the paper's Nov 2015 events.
func ClassifyRaster(rows []RasterRow, d *atlas.Dataset, sched *attack.Schedule, eventIdx int) (map[RasterGroup]int, error) {
	if sched == nil {
		sched = attack.Nov2015Schedule()
	}
	events := sched.Events
	if eventIdx < 0 || eventIdx >= len(events) {
		return nil, fmt.Errorf("analysis: bad event %d", eventIdx)
	}
	event := events[eventIdx]
	startRB := (event.StartMinute - d.StartMinute) / d.RawBinMinutes
	endRB := (event.EndMinute - d.StartMinute) / d.RawBinMinutes
	postRB := endRB + 120/d.RawBinMinutes

	out := map[RasterGroup]int{}
	isHome := func(c byte) bool { return c == 'L' || c == 'F' }
	for _, r := range rows {
		if startRB < 0 || endRB > len(r.Cells) {
			return nil, fmt.Errorf("analysis: event outside raster")
		}
		home := byte('L')
		for _, c := range r.Cells[:startRB] {
			if isHome(c) {
				home = c
				break
			}
		}
		var away, fail, homeOK int
		for _, c := range r.Cells[startRB:endRB] {
			switch {
			case c == '.':
				fail++
			case c == home:
				homeOK++
			case c != home && c != '.':
				away++
			}
		}
		n := endRB - startRB
		post := home
		if postRB < len(r.Cells) {
			// First successful post-event cell decides where it settled.
			for _, c := range r.Cells[postRB:] {
				if c != '.' {
					post = c
					break
				}
			}
		}
		switch {
		case away >= n/4 && post == home:
			out[GroupFlipReturn]++
		case away >= n/4:
			out[GroupFlipStay]++
		case fail >= n/2:
			out[GroupStuck]++
		default:
			out[GroupUnaffected]++
		}
	}
	return out, nil
}

// ServerSeries is one server's reachability and RTT over time (Figures 12
// and 13).
type ServerSeries struct {
	Site    string
	Server  int
	Success *stats.Series // successful probes per bin
	RTT     *stats.Series // median RTT per bin
}

// FigureServers derives per-server reachability/RTT for a site from raw
// probes.
func (a *Analyzer) FigureServers(letter byte, code string) ([]ServerSeries, error) {
	d := a.d
	if !d.HasRaw(letter) {
		return nil, fmt.Errorf("analysis: no raw data for %c", letter)
	}
	l, ok := a.ev.Deployment.Letter(letter)
	if !ok {
		return nil, fmt.Errorf("analysis: unknown letter %c", letter)
	}
	site, ok := l.SiteByCode(code)
	if !ok {
		return nil, fmt.Errorf("analysis: no site %c-%s", letter, code)
	}
	var siteIdx int16 = -1
	for si, s := range l.Sites {
		if s == site {
			siteIdx = int16(si)
		}
	}
	bins := d.Bins
	perServerCounts := make([][]float64, site.NumServers)
	perServerRTTs := make([][][]float64, site.NumServers)
	for i := range perServerCounts {
		perServerCounts[i] = make([]float64, bins)
		perServerRTTs[i] = make([][]float64, bins)
	}
	rawPerBin := d.BinMinutes / d.RawBinMinutes
	if rawPerBin < 1 {
		rawPerBin = 1
	}
	raw, err := d.RawRows(letter)
	if err != nil {
		return nil, err
	}
	for raw.Next() {
		status, rtt := raw.Status(), raw.RTT()
		for rb, st := range status {
			if st != atlas.OK || raw.Site(rb) != siteIdx {
				continue
			}
			srv := int(raw.Server(rb))
			if srv < 1 || srv > site.NumServers {
				continue
			}
			b := rb / rawPerBin
			if b >= bins {
				continue
			}
			perServerCounts[srv-1][b]++
			perServerRTTs[srv-1][b] = append(perServerRTTs[srv-1][b], float64(rtt[rb]))
		}
	}
	var out []ServerSeries
	for srv := 1; srv <= site.NumServers; srv++ {
		ss := ServerSeries{
			Site: site.Name(), Server: srv,
			Success: stats.NewSeries(fmt.Sprintf("%s-S%d-ok", site.Name(), srv), d.StartMinute, d.BinMinutes, bins),
			RTT:     stats.NewSeries(fmt.Sprintf("%s-S%d-rtt", site.Name(), srv), d.StartMinute, d.BinMinutes, bins),
		}
		for b := 0; b < bins; b++ {
			ss.Success.Values[b] = perServerCounts[srv-1][b]
			ss.RTT.Values[b] = stats.Median(perServerRTTs[srv-1][b])
		}
		out = append(out, ss)
	}
	return out, nil
}

// Figure14Site is one collateral-damage candidate at an unattacked letter.
type Figure14Site struct {
	Site      string
	SiteIndex int
	MedianVPs float64
	DipFrac   float64 // worst in-event drop relative to median
	Series    *stats.Series
}

// Figure14 finds sites of an unattacked letter with >= 20 VPs whose
// reachability dipped at least minDip during event windows (the paper uses
// 10%), i.e. collateral damage.
func (a *Analyzer) Figure14(letter byte, minDip float64) ([]Figure14Site, error) {
	sites := a.ev.LetterSites(letter)
	if sites == nil {
		return nil, fmt.Errorf("analysis: unknown letter %c", letter)
	}
	var out []Figure14Site
	for si := range sites {
		s, err := a.d.SiteSeries(letter, si)
		if err != nil {
			return nil, err
		}
		med := s.Median()
		if med < StableVPThreshold {
			continue
		}
		worst := 0.0
		for b, v := range s.Values {
			minute := s.MinuteFor(b)
			if a.ev.Schedule().Active(minute) < 0 {
				continue
			}
			dip := (med - v) / med
			if dip > worst {
				worst = dip
			}
		}
		if worst >= minDip {
			out = append(out, Figure14Site{
				Site: sites[si].Name(), SiteIndex: si,
				MedianVPs: med, DipFrac: worst, Series: s,
			})
		}
	}
	return out, nil
}

// Figure15 returns the .nl collateral series (already normalized).
func (a *Analyzer) Figure15() []*stats.Series {
	return a.ev.NLSeries
}
