package analysis

import (
	"testing"

	"github.com/rootevent/anycastddos/internal/attack"
	"github.com/rootevent/anycastddos/internal/resolver"
)

func TestUserImpactEndUsersShielded(t *testing.T) {
	ev, _ := getShared(t)
	cfg := DefaultUserImpactConfig(3)
	cfg.Resolvers = 60
	cfg.QueriesPerBin = 6
	res, err := UserImpact(ev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalQueries != 60*6*288 {
		t.Fatalf("total queries = %d", res.TotalQueries)
	}
	// The paper's headline: no end-user visible errors despite severe
	// per-letter loss. Failure fraction must stay tiny even mid-event.
	evBin := (attack.Event1Start + 80) / 10
	if res.FailFrac.Values[evBin] > 0.02 {
		t.Errorf("mid-event user failure fraction = %v, want ~0 (caching + retries)", res.FailFrac.Values[evBin])
	}
	max, _, _ := res.FailFrac.Max()
	if max > 0.05 {
		t.Errorf("worst-bin failure fraction = %v", max)
	}
	// Caching absorbs most queries.
	if res.CacheHitFrac < 0.5 {
		t.Errorf("cache hit fraction = %v, want > 0.5", res.CacheHitFrac)
	}
	// Letter flips spike during events relative to quiet periods.
	pre := res.FlipFrac.Values[20]
	during := res.FlipFrac.Values[evBin]
	if during <= pre {
		t.Errorf("flip fraction %v -> %v; expected event increase", pre, during)
	}
	// Latency rises during the event (retries + queueing) but stays
	// bounded by the retry ladder.
	if res.MeanLatencyMs.Values[evBin] <= res.MeanLatencyMs.Values[20] {
		t.Errorf("latency %v -> %v; expected event increase",
			res.MeanLatencyMs.Values[20], res.MeanLatencyMs.Values[evBin])
	}
	// Multiple letters served the population.
	if len(res.LetterShare) < 4 {
		t.Errorf("letters used = %d, want >= 4", len(res.LetterShare))
	}
}

func TestUserImpactConfigValidation(t *testing.T) {
	ev, _ := getShared(t)
	bad := []UserImpactConfig{
		{Resolvers: 0, QueriesPerBin: 1, Domains: 1},
		{Resolvers: 1, QueriesPerBin: 0, Domains: 1},
		{Resolvers: 1, QueriesPerBin: 1, Domains: 0},
	}
	for i, cfg := range bad {
		if _, err := UserImpact(ev, cfg); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

func TestUserImpactStrategies(t *testing.T) {
	// SRTT-aware selection (what real resolvers do) shields users best;
	// blind strategies can burn their whole retry ladder on dead letters
	// mid-event. The ordering — adaptive <= blind — is the point.
	ev, _ := getShared(t)
	worst := map[resolver.Strategy]float64{}
	for _, strat := range []resolver.Strategy{resolver.PreferFastest, resolver.RoundRobin, resolver.Uniform} {
		cfg := DefaultUserImpactConfig(5)
		cfg.Resolvers = 20
		cfg.QueriesPerBin = 3
		cfg.Strategy = strat
		res, err := UserImpact(ev, cfg)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		max, _, _ := res.FailFrac.Max()
		worst[strat] = max
		if max > 0.30 {
			t.Errorf("%v: worst failure fraction %v", strat, max)
		}
	}
	if worst[resolver.PreferFastest] > worst[resolver.RoundRobin]+0.01 ||
		worst[resolver.PreferFastest] > worst[resolver.Uniform]+0.01 {
		t.Errorf("prefer-fastest (%v) should not fail more than blind strategies (rr %v, uniform %v)",
			worst[resolver.PreferFastest], worst[resolver.RoundRobin], worst[resolver.Uniform])
	}
}
