package analysis

import (
	"github.com/rootevent/anycastddos/internal/atlas"
	"github.com/rootevent/anycastddos/internal/core"
)

// Analyzer computes the paper's figures and tables from one completed
// simulation and its measurement dataset. Construct it once with New and
// call one method per experiment; methods are safe for concurrent use (the
// evaluator and dataset are only read).
type Analyzer struct {
	ev *core.Evaluator
	d  *atlas.Dataset
}

// New returns an Analyzer over a completed evaluator run and the dataset
// its Measure produced.
func New(ev *core.Evaluator, d *atlas.Dataset) *Analyzer {
	return &Analyzer{ev: ev, d: d}
}
