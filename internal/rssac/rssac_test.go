package rssac

import (
	"math"
	"testing"

	"github.com/rootevent/anycastddos/internal/attack"
)

func TestDayName(t *testing.T) {
	if DayName(0) != "2015-11-30" || DayName(1) != "2015-12-01" {
		t.Errorf("day names = %q, %q", DayName(0), DayName(1))
	}
	if DayName(5) != "2015-11-30+5d" {
		t.Errorf("DayName(5) = %q", DayName(5))
	}
}

func TestAccumulatorBaselineOnly(t *testing.T) {
	a := NewAccumulator(2, attack.DefaultSourceMix)
	// A quiet letter: 40 kq/s all day, every response sent.
	for m := 0; m < 2880; m++ {
		a.Record('L', Minute{Minute: m, LegitServedQPS: 40_000, ResponseQPS: 40_000})
	}
	rs := a.Finalize('L')
	if len(rs) != 2 {
		t.Fatalf("reports = %d", len(rs))
	}
	wantDay := 40_000.0 * 86400
	for d, r := range rs {
		if math.Abs(r.Queries-wantDay) > 1 {
			t.Errorf("day %d queries = %v, want %v", d, r.Queries, wantDay)
		}
		if math.Abs(r.Responses-wantDay) > 1 {
			t.Errorf("day %d responses = %v", d, r.Responses)
		}
		// Unique sources stay at baseline without attack traffic.
		if math.Abs(r.UniqueSources-2_900_000) > 1 {
			t.Errorf("day %d unique = %v", d, r.UniqueSources)
		}
	}
}

func TestAccumulatorAttackDay(t *testing.T) {
	a := NewAccumulator(2, attack.DefaultSourceMix)
	ev := attack.Events()[0]
	for m := 0; m < 2880; m++ {
		rec := Minute{Minute: m, LegitServedQPS: 40_000, ResponseQPS: 40_000}
		if ev.Contains(m) {
			rec.AttackServedQPS = 2_000_000 // accepted share of the flood
			rec.AttackQueryBytes = ev.QueryBytes
			rec.AttackResponseBytes = ev.ResponseBytes
			rec.ResponseQPS = 40_000 + 2_000_000*0.4 // RRL drops 60%
		}
		a.Record('A', rec)
	}
	rs := a.Finalize('A')
	day0, day1 := rs[0], rs[1]
	baseline := 40_000.0 * 86400
	attackQ := 2_000_000.0 * 160 * 60
	if math.Abs(day0.Queries-(baseline+attackQ)) > attackQ*0.01 {
		t.Errorf("day0 queries = %g, want ~%g", day0.Queries, baseline+attackQ)
	}
	if math.Abs(day1.Queries-baseline) > 1 {
		t.Errorf("day1 queries = %g, want %g (no attack)", day1.Queries, baseline)
	}
	// Unique sources explode on the attack day (Table 3: 100x-300x).
	ratio := day0.UniqueSources / 2_900_000
	if ratio < 50 {
		t.Errorf("unique-IP ratio = %.1f, want > 50", ratio)
	}
	if day1.UniqueSources != 2_900_000 {
		t.Errorf("day1 unique = %v", day1.UniqueSources)
	}
	// The attack's size bin (32-47 B) dominates the day-0 query histogram.
	if got := day0.QuerySizes.ArgMax(); got != 2 {
		t.Errorf("day0 query ArgMax bin = %d, want 2 (32-47B)", got)
	}
	lo, hi := day0.QuerySizes.BinRange(day0.QuerySizes.ArgMax())
	if lo != 32 || hi != 48 {
		t.Errorf("attack bin = [%v,%v)", lo, hi)
	}
	// Responses fewer than queries on the attack day (RRL, §3.1).
	if day0.Responses >= day0.Queries {
		t.Errorf("day0 responses %g >= queries %g", day0.Responses, day0.Queries)
	}
}

func TestRecordOutOfRangeIgnored(t *testing.T) {
	a := NewAccumulator(1, attack.DefaultSourceMix)
	a.Record('K', Minute{Minute: -5, LegitServedQPS: 1000})
	a.Record('K', Minute{Minute: 1500, LegitServedQPS: 1000})
	a.Record('K', Minute{Minute: 10, LegitServedQPS: 1000, ResponseQPS: 1000})
	rs := a.Finalize('K')
	if len(rs) != 1 {
		t.Fatalf("reports = %d", len(rs))
	}
	if rs[0].Queries != 60_000 {
		t.Errorf("queries = %v, want 60000 (one in-range minute)", rs[0].Queries)
	}
}

func TestFinalizeUnknownLetter(t *testing.T) {
	a := NewAccumulator(1, attack.DefaultSourceMix)
	if rs := a.Finalize('Q'); rs != nil {
		t.Errorf("Finalize(Q) = %v", rs)
	}
}

func TestLettersSorted(t *testing.T) {
	a := NewAccumulator(1, attack.DefaultSourceMix)
	a.Record('K', Minute{Minute: 0, LegitServedQPS: 1})
	a.Record('A', Minute{Minute: 0, LegitServedQPS: 1})
	a.Record('H', Minute{Minute: 0, LegitServedQPS: 1})
	got := a.Letters()
	if string(got) != "AHK" {
		t.Errorf("Letters = %q", string(got))
	}
}

func TestSyntheticBaseline(t *testing.T) {
	r := SyntheticBaseline('K', 40_000, 0)
	if r.Queries != 40_000*86400 {
		t.Errorf("baseline queries = %v", r.Queries)
	}
	if r.QuerySizes.Total() == 0 || r.ResponseSizes.Total() == 0 {
		t.Error("baseline histograms empty")
	}
	// Baseline histogram peaks well below the attack bins.
	if r.QuerySizes.ArgMax() > 3 {
		t.Errorf("baseline query peak bin = %d", r.QuerySizes.ArgMax())
	}
	m := MeanBaseline('K', 40_000, 7)
	if m.Queries != r.Queries {
		t.Errorf("mean baseline = %v, want %v", m.Queries, r.Queries)
	}
}

func TestGbpsFromQueries(t *testing.T) {
	// 5 Mq/s of 32+40=72-byte packets for one second = 2.88 Gb/s.
	got := GbpsFromQueries(5_000_000, 32, 1)
	want := 5_000_000 * 72 * 8 / 1e9
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Gbps = %v, want %v", got, want)
	}
	if GbpsFromQueries(100, 32, 0) != 0 {
		t.Error("zero-interval should return 0")
	}
	// Sanity vs Table 3: A-Root's 5.12 Mq/s delta over 160 min was
	// ~3.4 Gb/s; our converter should land within 20%.
	queries := 5.12e6 * 160 * 60
	gbps := GbpsFromQueries(queries, 32, 86400) * 86400 / (160 * 60)
	if gbps < 2.5 || gbps > 4.5 {
		t.Errorf("A-Root event bitrate = %.2f Gb/s, want ~3.4", gbps)
	}
}
