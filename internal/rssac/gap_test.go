package rssac

import (
	"math"
	"strings"
	"testing"

	"github.com/rootevent/anycastddos/internal/attack"
)

func TestRecordGapCountsMissingMinutes(t *testing.T) {
	a := NewAccumulator(2, attack.DefaultSourceMix)
	for m := 0; m < 2*MinutesPerDay; m++ {
		if m >= 100 && m < 130 {
			a.RecordGap('K', m)
			continue
		}
		a.Record('K', Minute{Minute: m, LegitServedQPS: 40_000, ResponseQPS: 40_000})
	}
	a.RecordGap('K', -1)              // ignored
	a.RecordGap('K', 5*MinutesPerDay) // past horizon, ignored
	rs := a.Finalize('K')
	if rs[0].MissingMinutes != 30 || rs[1].MissingMinutes != 0 {
		t.Fatalf("missing minutes = %d, %d; want 30, 0", rs[0].MissingMinutes, rs[1].MissingMinutes)
	}
	// The gapped day measured fewer queries, but the coverage-corrected
	// estimate should recover the true daily volume.
	wantRaw := 40_000.0 * 60 * (MinutesPerDay - 30)
	if math.Abs(rs[0].Queries-wantRaw) > 1 {
		t.Errorf("day 0 queries = %v, want %v", rs[0].Queries, wantRaw)
	}
	wantFull := 40_000.0 * 60 * MinutesPerDay
	if est := rs[0].EstimatedQueries(); math.Abs(est-wantFull) > 1e-6*wantFull {
		t.Errorf("estimated queries = %v, want %v", est, wantFull)
	}
	if math.Abs(rs[1].EstimatedQueries()-rs[1].Queries) > 1e-9 {
		t.Error("gap-free day should estimate exactly its raw count")
	}
	if cov := rs[0].CoverageFrac(); math.Abs(cov-float64(MinutesPerDay-30)/MinutesPerDay) > 1e-12 {
		t.Errorf("coverage = %v", cov)
	}
}

func TestFullyMissingDayEstimatesZero(t *testing.T) {
	r := &Report{Letter: 'K', MissingMinutes: MinutesPerDay}
	if r.EstimatedQueries() != 0 || r.CoverageFrac() != 0 {
		t.Errorf("fully gapped day: est %v cov %v", r.EstimatedQueries(), r.CoverageFrac())
	}
}

func TestMissingIntervalsRoundTrip(t *testing.T) {
	r := SyntheticBaseline('K', 40_000, 0)
	r.MissingMinutes = 77
	var sb strings.Builder
	if err := WriteReport(&sb, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "missing-intervals: 77") {
		t.Fatalf("output lacks missing-intervals key:\n%s", sb.String())
	}
	got, err := ParseReport(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.MissingMinutes != 77 {
		t.Errorf("round-trip missing minutes = %d, want 77", got.MissingMinutes)
	}

	// Gap-free reports must serialize exactly as before the key existed.
	clean := SyntheticBaseline('K', 40_000, 0)
	var cb strings.Builder
	if err := WriteReport(&cb, clean); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(cb.String(), "missing-intervals") {
		t.Error("gap-free report should not emit missing-intervals")
	}
}
