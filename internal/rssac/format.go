package rssac

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"github.com/rootevent/anycastddos/internal/stats"
)

// RSSAC-002 reports are published as per-day YAML documents by each
// operator. This file implements a writer and a strict parser for the
// subset of the v3 schema this system uses (traffic-volume, unique-sources,
// traffic-sizes), so simulated reports round-trip through the same file
// format researchers scrape from operators — and so the Table 3 pipeline
// can, in principle, consume real published files.

// FormatVersion is the emitted rssac002 schema version.
const FormatVersion = "rssac002v3"

// ErrBadReportFile marks unparseable input.
var ErrBadReportFile = errors.New("rssac: malformed report file")

// serviceName returns the letter's service identity.
func serviceName(letter byte) string {
	return fmt.Sprintf("%c.root-servers.net", letter+('a'-'A'))
}

// letterFromService parses "k.root-servers.net" back to 'K'.
func letterFromService(s string) (byte, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || !strings.HasSuffix(s, ".root-servers.net") {
		return 0, fmt.Errorf("%w: service %q", ErrBadReportFile, s)
	}
	c := s[0]
	if c < 'a' || c > 'm' {
		return 0, fmt.Errorf("%w: service letter %q", ErrBadReportFile, s)
	}
	return c - ('a' - 'A'), nil
}

// WriteReport emits one daily report as an RSSAC-002-style YAML document.
func WriteReport(w io.Writer, r *Report) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "version: %s\n", FormatVersion)
	fmt.Fprintf(bw, "service: %s\n", serviceName(r.Letter))
	fmt.Fprintf(bw, "start-period: %sT00:00:00Z\n", r.DayString())
	// Only gapped days carry the key, so fault-free output is unchanged.
	if r.MissingMinutes > 0 {
		fmt.Fprintf(bw, "missing-intervals: %d\n", r.MissingMinutes)
	}
	fmt.Fprintf(bw, "metric: traffic-volume\n")
	fmt.Fprintf(bw, "dns-udp-queries-received-ipv4: %.0f\n", r.Queries)
	fmt.Fprintf(bw, "dns-udp-responses-sent-ipv4: %.0f\n", r.Responses)
	fmt.Fprintf(bw, "metric: unique-sources\n")
	fmt.Fprintf(bw, "num-sources-ipv4: %.0f\n", r.UniqueSources)
	fmt.Fprintf(bw, "metric: traffic-sizes\n")
	writeSizes := func(key string, h *histogramView) {
		fmt.Fprintf(bw, "%s:\n", key)
		for _, b := range h.bins {
			fmt.Fprintf(bw, "  %d-%d: %d\n", b.lo, b.hi, b.count)
		}
	}
	writeSizes("udp-request-sizes", newHistogramView(r.QuerySizes))
	writeSizes("udp-response-sizes", newHistogramView(r.ResponseSizes))
	return bw.Flush()
}

// histogramView lists the non-empty bins of a size histogram in order.
type histogramView struct {
	bins []sizeBin
}

type sizeBin struct {
	lo, hi int
	count  int64
}

func newHistogramView(h *stats.Histogram) *histogramView {
	v := &histogramView{}
	if h == nil {
		return v
	}
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		lo, hi := h.BinRange(i)
		v.bins = append(v.bins, sizeBin{lo: int(lo), hi: int(hi) - 1, count: c})
	}
	sort.Slice(v.bins, func(a, b int) bool { return v.bins[a].lo < v.bins[b].lo })
	return v
}

// ParseReport reads one document written by WriteReport.
func ParseReport(r io.Reader) (*Report, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	rep := &Report{
		QuerySizes:    newSizeHistogram(),
		ResponseSizes: newSizeHistogram(),
	}
	var curSizes *stats.Histogram
	seenVersion := false
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		indented := strings.HasPrefix(line, "  ")
		key, val, found := strings.Cut(trimmed, ":")
		if !found {
			return nil, fmt.Errorf("%w: line %q", ErrBadReportFile, line)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		if indented {
			// A size bin under the current sizes section.
			if curSizes == nil {
				return nil, fmt.Errorf("%w: orphan size bin %q", ErrBadReportFile, line)
			}
			loStr, hiStr, ok := strings.Cut(key, "-")
			if !ok {
				return nil, fmt.Errorf("%w: size bin %q", ErrBadReportFile, key)
			}
			lo, err1 := strconv.Atoi(loStr)
			hi, err2 := strconv.Atoi(hiStr)
			count, err3 := strconv.ParseInt(val, 10, 64)
			if err1 != nil || err2 != nil || err3 != nil || hi < lo || count < 0 {
				return nil, fmt.Errorf("%w: size bin %q: %q", ErrBadReportFile, key, val)
			}
			curSizes.Add(float64(lo), count)
			continue
		}
		switch key {
		case "version":
			if val != FormatVersion {
				return nil, fmt.Errorf("%w: version %q", ErrBadReportFile, val)
			}
			seenVersion = true
		case "service":
			letter, err := letterFromService(val)
			if err != nil {
				return nil, err
			}
			rep.Letter = letter
		case "start-period":
			day, err := dayFromDate(strings.TrimSuffix(val, "T00:00:00Z"))
			if err != nil {
				return nil, err
			}
			rep.Day = day
		case "metric":
			curSizes = nil
		case "missing-intervals":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 || n > MinutesPerDay {
				return nil, fmt.Errorf("%w: missing-intervals %q", ErrBadReportFile, val)
			}
			rep.MissingMinutes = n
		case "dns-udp-queries-received-ipv4":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 {
				return nil, fmt.Errorf("%w: queries %q", ErrBadReportFile, val)
			}
			rep.Queries = f
		case "dns-udp-responses-sent-ipv4":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 {
				return nil, fmt.Errorf("%w: responses %q", ErrBadReportFile, val)
			}
			rep.Responses = f
		case "num-sources-ipv4":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 {
				return nil, fmt.Errorf("%w: sources %q", ErrBadReportFile, val)
			}
			rep.UniqueSources = f
		case "udp-request-sizes":
			curSizes = rep.QuerySizes
		case "udp-response-sizes":
			curSizes = rep.ResponseSizes
		default:
			return nil, fmt.Errorf("%w: unknown key %q", ErrBadReportFile, key)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !seenVersion || rep.Letter == 0 {
		return nil, fmt.Errorf("%w: missing version or service", ErrBadReportFile)
	}
	return rep, nil
}

// dayFromDate inverts DayName for the two event days and the generic form.
func dayFromDate(s string) (int, error) {
	switch s {
	case "2015-11-30":
		return 0, nil
	case "2015-12-01":
		return 1, nil
	}
	if rest, ok := strings.CutPrefix(s, "2015-11-30+"); ok {
		if days, ok := strings.CutSuffix(rest, "d"); ok {
			n, err := strconv.Atoi(days)
			if err == nil && n >= 0 {
				return n, nil
			}
		}
	}
	return 0, fmt.Errorf("%w: start-period %q", ErrBadReportFile, s)
}
