package rssac

import (
	"strings"
	"testing"
)

// FuzzParseReport guards the RSSAC-002 file parser: real inputs come from
// scraped operator publications.
func FuzzParseReport(f *testing.F) {
	var sb strings.Builder
	if err := WriteReport(&sb, SyntheticBaseline('K', 40_000, 0)); err != nil {
		f.Fatal(err)
	}
	f.Add(sb.String())
	f.Add("version: rssac002v3\nservice: a.root-servers.net\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, text string) {
		rep, err := ParseReport(strings.NewReader(text))
		if err != nil {
			return
		}
		if rep.Letter < 'A' || rep.Letter > 'M' || rep.Queries < 0 || rep.Day < 0 {
			t.Fatalf("invalid report accepted: %+v", rep)
		}
	})
}
