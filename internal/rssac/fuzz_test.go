package rssac

import (
	"strings"
	"testing"
)

// FuzzParseReport guards the RSSAC-002 file parser: real inputs come from
// scraped operator publications.
func FuzzParseReport(f *testing.F) {
	var sb strings.Builder
	if err := WriteReport(&sb, SyntheticBaseline('K', 40_000, 0)); err != nil {
		f.Fatal(err)
	}
	f.Add(sb.String())
	f.Add("version: rssac002v3\nservice: a.root-servers.net\n")
	f.Add("garbage")
	// MonitorGap-shaped reports: days with missing measurement intervals.
	gapped := SyntheticBaseline('K', 40_000, 0)
	gapped.MissingMinutes = 137
	var gb strings.Builder
	if err := WriteReport(&gb, gapped); err != nil {
		f.Fatal(err)
	}
	f.Add(gb.String())
	f.Add("version: rssac002v3\nservice: k.root-servers.net\nstart-period: 2015-11-30T00:00:00Z\nmissing-intervals: 1440\n")
	f.Add("version: rssac002v3\nservice: k.root-servers.net\nmissing-intervals: 0\n")
	f.Add("version: rssac002v3\nservice: k.root-servers.net\nmissing-intervals: -5\n")
	f.Add("version: rssac002v3\nservice: k.root-servers.net\nmissing-intervals: 99999\n")
	f.Fuzz(func(t *testing.T, text string) {
		rep, err := ParseReport(strings.NewReader(text))
		if err != nil {
			return
		}
		if rep.Letter < 'A' || rep.Letter > 'M' || rep.Queries < 0 || rep.Day < 0 {
			t.Fatalf("invalid report accepted: %+v", rep)
		}
		if rep.MissingMinutes < 0 || rep.MissingMinutes > MinutesPerDay {
			t.Fatalf("invalid missing-intervals accepted: %+v", rep)
		}
		if f := rep.CoverageFrac(); f < 0 || f > 1 {
			t.Fatalf("coverage %v outside [0,1]: %+v", f, rep)
		}
	})
}
