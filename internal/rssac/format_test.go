package rssac

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"github.com/rootevent/anycastddos/internal/attack"
)

func eventDayReport(t *testing.T) *Report {
	t.Helper()
	a := NewAccumulator(2, attack.DefaultSourceMix)
	ev := attack.Events()[0]
	for m := 0; m < 2880; m++ {
		rec := Minute{Minute: m, LegitServedQPS: 40_000, ResponseQPS: 40_000}
		if ev.Contains(m) {
			rec.AttackServedQPS = 2_000_000
			rec.AttackQueryBytes = ev.QueryBytes
			rec.AttackResponseBytes = ev.ResponseBytes
			rec.ResponseQPS = 40_000 + 2_000_000*0.4
		}
		a.Record('K', rec)
	}
	return a.Finalize('K')[0]
}

func TestReportFormatRoundTrip(t *testing.T) {
	orig := eventDayReport(t)
	var buf bytes.Buffer
	if err := WriteReport(&buf, orig); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"version: rssac002v3",
		"service: k.root-servers.net",
		"start-period: 2015-11-30T00:00:00Z",
		"dns-udp-queries-received-ipv4:",
		"num-sources-ipv4:",
		"udp-request-sizes:",
		"  32-47:",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("document missing %q:\n%s", want, text)
		}
	}
	got, err := ParseReport(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if got.Letter != 'K' || got.Day != 0 {
		t.Errorf("identity = %c/%d", got.Letter, got.Day)
	}
	// Counts round-trip to integer precision.
	if math.Abs(got.Queries-math.Round(orig.Queries)) > 1 {
		t.Errorf("queries %v vs %v", got.Queries, orig.Queries)
	}
	if math.Abs(got.Responses-math.Round(orig.Responses)) > 1 {
		t.Errorf("responses %v vs %v", got.Responses, orig.Responses)
	}
	if math.Abs(got.UniqueSources-math.Round(orig.UniqueSources)) > 1 {
		t.Errorf("sources %v vs %v", got.UniqueSources, orig.UniqueSources)
	}
	// Size histograms round-trip bin-for-bin.
	for i, c := range orig.QuerySizes.Counts {
		if got.QuerySizes.Counts[i] != c {
			t.Fatalf("query bin %d: %d vs %d", i, got.QuerySizes.Counts[i], c)
		}
	}
	for i, c := range orig.ResponseSizes.Counts {
		if got.ResponseSizes.Counts[i] != c {
			t.Fatalf("response bin %d: %d vs %d", i, got.ResponseSizes.Counts[i], c)
		}
	}
	// The attack signature (ArgMax bin) survives the file format.
	if got.QuerySizes.ArgMax() != orig.QuerySizes.ArgMax() {
		t.Error("attack bin lost in round trip")
	}
}

func TestParseReportRejectsMalformed(t *testing.T) {
	good := func() string {
		var buf bytes.Buffer
		if err := WriteReport(&buf, eventDayReport(t)); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}()
	cases := []string{
		"",
		"version: rssac002v9\nservice: k.root-servers.net\n",
		strings.Replace(good, "service: k.root-servers.net", "service: z.root-servers.net", 1),
		strings.Replace(good, "service: k.root-servers.net", "service: example.com", 1),
		strings.Replace(good, "start-period: 2015-11-30T00:00:00Z", "start-period: whenever", 1),
		strings.Replace(good, "dns-udp-queries-received-ipv4: ", "dns-udp-queries-received-ipv4: -", 1),
		"  32-47: 10\n" + good, // orphan size bin before any section
		strings.Replace(good, "udp-request-sizes:", "mystery-key:", 1),
		"no colon line\n",
	}
	for i, text := range cases {
		if _, err := ParseReport(strings.NewReader(text)); !errors.Is(err, ErrBadReportFile) {
			t.Errorf("case %d: err = %v, want ErrBadReportFile", i, err)
		}
	}
}

func TestParseReportGenericDay(t *testing.T) {
	r := SyntheticBaseline('H', 30_000, 5)
	var buf bytes.Buffer
	if err := WriteReport(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := ParseReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Day != 5 || got.Letter != 'H' {
		t.Errorf("round trip = %c/%d", got.Letter, got.Day)
	}
}

func TestServiceNames(t *testing.T) {
	if serviceName('A') != "a.root-servers.net" || serviceName('M') != "m.root-servers.net" {
		t.Error("serviceName wrong")
	}
	if l, err := letterFromService("k.root-servers.net"); err != nil || l != 'K' {
		t.Errorf("letterFromService = %c, %v", l, err)
	}
	if _, err := letterFromService("n.root-servers.net"); err == nil {
		t.Error("letter beyond M accepted")
	}
}
