// Package rssac produces RSSAC-002-style operational reports for the
// simulated root letters.
//
// RSSAC-002 specifies daily, per-letter statistics: query and response
// volumes, distinct-source counts, and query/response size distributions in
// 16-byte bins (§2.4.2, §3.1 of the paper). At event time only five letters
// (A, H, J, K, L) published this data, and reporting is best-effort — under
// attack, letters measure what they manage to serve, badly undercounting
// the offered load. Both properties matter for Table 3: the paper's
// lower/upper-bound event-size estimation method exists precisely because
// of them, and this package reproduces the inputs it needs.
package rssac

import (
	"fmt"

	"github.com/rootevent/anycastddos/internal/attack"
	"github.com/rootevent/anycastddos/internal/stats"
)

// SizeBins is the number of 16-byte histogram bins (covers 0..1023 bytes).
const SizeBins = 64

// SizeBinWidth is the RSSAC-002 size bin width in bytes.
const SizeBinWidth = 16

// MinutesPerDay is the number of reporting intervals in one daily report.
const MinutesPerDay = 24 * 60

// DayName formats a simulation day index as a date (day 0 = 2015-11-30).
func DayName(day int) string {
	switch day {
	case 0:
		return "2015-11-30"
	case 1:
		return "2015-12-01"
	default:
		return fmt.Sprintf("2015-11-30+%dd", day)
	}
}

// Report is one letter's daily report.
type Report struct {
	Letter        byte
	Day           int
	Queries       float64 // queries the letter measured (served, not offered)
	Responses     float64 // responses sent after RRL
	UniqueSources float64 // distinct source addresses seen
	QuerySizes    *stats.Histogram
	ResponseSizes *stats.Histogram
	// MissingMinutes counts the day's minutes with no measurement at all
	// (monitoring outages — the paper's §2.4 data holes). Queries and
	// Responses cover only the observed minutes; consumers comparing
	// volumes must use EstimatedQueries/EstimatedResponses or they will
	// mis-sum gapped days as low-traffic days.
	MissingMinutes int
}

// DayString returns the report's date.
func (r *Report) DayString() string { return DayName(r.Day) }

// CoverageFrac is the fraction of the day's minutes with measurements.
func (r *Report) CoverageFrac() float64 {
	observed := MinutesPerDay - r.MissingMinutes
	if observed < 0 {
		observed = 0
	}
	return float64(observed) / MinutesPerDay
}

// EstimatedQueries scales the measured query count up to a full day,
// assuming the unobserved minutes carried the mean observed rate. Equal
// to Queries when the day has no gaps; zero when it is entirely missing.
func (r *Report) EstimatedQueries() float64 {
	return scaleForCoverage(r.Queries, r.MissingMinutes)
}

// EstimatedResponses is EstimatedQueries for the response count.
func (r *Report) EstimatedResponses() float64 {
	return scaleForCoverage(r.Responses, r.MissingMinutes)
}

func scaleForCoverage(v float64, missing int) float64 {
	observed := MinutesPerDay - missing
	if missing <= 0 || observed <= 0 {
		return v
	}
	return v * MinutesPerDay / float64(observed)
}

// newSizeHistogram allocates an RSSAC-002 size histogram.
func newSizeHistogram() *stats.Histogram {
	return stats.NewHistogram(0, SizeBinWidth, SizeBins)
}

// legitQuerySizes spreads normal query traffic over realistic DNS message
// sizes (root queries are mostly 17-60 bytes; EDNS adds a tail).
var legitQuerySizes = []struct {
	bytes int
	frac  float64
}{
	{24, 0.15}, {30, 0.25}, {38, 0.25}, {45, 0.20}, {52, 0.10}, {70, 0.05},
}

// legitResponseSizes models the mixed referral/NXDOMAIN response sizes of
// normal root traffic.
var legitResponseSizes = []struct {
	bytes int
	frac  float64
}{
	{110, 0.20}, {250, 0.30}, {500, 0.30}, {750, 0.15}, {900, 0.05},
}

// Accumulator aggregates per-minute traffic summaries into daily reports.
type Accumulator struct {
	days    int
	mix     attack.SourceMix
	reports map[byte][]*Report
	// attackQueries tracks accepted attack queries per letter per day to
	// derive unique-source estimates; retryQueries tracks failover load
	// from other letters' resolver populations.
	attackQueries map[byte][]float64
	retryQueries  map[byte][]float64
	baselineIPs   float64
}

// NewAccumulator creates an accumulator covering the given number of days.
func NewAccumulator(days int, mix attack.SourceMix) *Accumulator {
	return &Accumulator{
		days:          days,
		mix:           mix,
		reports:       make(map[byte][]*Report),
		attackQueries: make(map[byte][]float64),
		retryQueries:  make(map[byte][]float64),
		baselineIPs:   2_900_000, // ~2.9M distinct resolvers/day (Table 3 baseline)
	}
}

func (a *Accumulator) letterReports(letter byte) []*Report {
	rs, ok := a.reports[letter]
	if !ok {
		rs = make([]*Report, a.days)
		for d := range rs {
			rs[d] = &Report{
				Letter: letter, Day: d,
				QuerySizes:    newSizeHistogram(),
				ResponseSizes: newSizeHistogram(),
			}
		}
		a.reports[letter] = rs
		a.attackQueries[letter] = make([]float64, a.days)
		a.retryQueries[letter] = make([]float64, a.days)
	}
	return rs
}

// Minute is one minute of measured (served) traffic at one letter.
type Minute struct {
	Minute int
	// LegitServedQPS and AttackServedQPS are query rates the letter
	// actually accepted (after ingress drops).
	LegitServedQPS  float64
	AttackServedQPS float64
	// RetryServedQPS is legitimate load that arrived because resolvers
	// failed over from other (attacked) letters — the "letter flips" of
	// §3.2.2. Retries come from resolvers that do not normally query
	// this letter, so they also inflate its distinct-source count.
	RetryServedQPS float64
	// ResponseQPS is the response rate after RRL suppression.
	ResponseQPS float64
	// Attack wire sizes for the active event (ignored when no attack).
	AttackQueryBytes    int
	AttackResponseBytes int
}

// RecordGap marks one minute of the day as unmeasured for a letter (the
// monitoring pipeline was down). Gapped minutes contribute nothing to
// the counts; they only raise MissingMinutes so consumers can correct.
func (a *Accumulator) RecordGap(letter byte, minute int) {
	if minute < 0 {
		return
	}
	day := minute / MinutesPerDay
	if day >= a.days {
		return
	}
	a.letterReports(letter)[day].MissingMinutes++
}

// Record folds one minute of traffic into the letter's daily report.
func (a *Accumulator) Record(letter byte, m Minute) {
	if m.Minute < 0 {
		return
	}
	day := m.Minute / MinutesPerDay
	if day >= a.days {
		return
	}
	rs := a.letterReports(letter)
	r := rs[day]
	legitQ := (m.LegitServedQPS + m.RetryServedQPS) * 60
	attackQ := m.AttackServedQPS * 60
	r.Queries += legitQ + attackQ
	r.Responses += m.ResponseQPS * 60
	a.attackQueries[letter][day] += attackQ
	a.retryQueries[letter][day] += m.RetryServedQPS * 60

	for _, sz := range legitQuerySizes {
		r.QuerySizes.Add(float64(sz.bytes), int64(legitQ*sz.frac))
	}
	if attackQ > 0 && m.AttackQueryBytes > 0 {
		r.QuerySizes.Add(float64(m.AttackQueryBytes), int64(attackQ))
	}
	// Responses: legit answered 1:1; attack responses are whatever RRL
	// let through beyond the legit share.
	legitResp := legitQ
	if m.ResponseQPS*60 < legitResp {
		legitResp = m.ResponseQPS * 60
	}
	attackResp := m.ResponseQPS*60 - legitResp
	for _, sz := range legitResponseSizes {
		r.ResponseSizes.Add(float64(sz.bytes), int64(legitResp*sz.frac))
	}
	if attackResp > 0 && m.AttackResponseBytes > 0 {
		r.ResponseSizes.Add(float64(m.AttackResponseBytes), int64(attackResp))
	}
}

// Finalize computes derived fields (unique sources) and returns the daily
// reports for a letter, or nil if the letter never recorded traffic.
func (a *Accumulator) Finalize(letter byte) []*Report {
	rs, ok := a.reports[letter]
	if !ok {
		return nil
	}
	for d, r := range rs {
		r.UniqueSources = a.baselineIPs + a.mix.ExpectedUniqueIPs(a.attackQueries[letter][d])
		// Failover traffic arrives from other letters' resolver
		// populations. The multiplier is calibrated to the paper's
		// observation that L-Root saw a 6-13x unique-IP increase while
		// its query rate grew only 1.66x (§3.2.2).
		if retry := a.retryQueries[letter][d]; retry > 0 {
			baseDay := r.Queries - retry - a.attackQueries[letter][d]
			if baseDay > 0 {
				r.UniqueSources += a.baselineIPs * 15 * retry / baseDay
			}
		}
	}
	return rs
}

// Letters returns all letters with recorded traffic, in byte order.
func (a *Accumulator) Letters() []byte {
	out := make([]byte, 0, len(a.reports))
	for l := byte('A'); l <= 'M'; l++ {
		if _, ok := a.reports[l]; ok {
			out = append(out, l)
		}
	}
	return out
}

// SyntheticBaseline fabricates a pre-event daily report for a letter
// running its normal load, used as the 7-day baseline of Table 3.
func SyntheticBaseline(letter byte, normalQPS float64, day int) *Report {
	r := &Report{
		Letter: letter, Day: day,
		Queries:       normalQPS * 86400,
		Responses:     normalQPS * 86400,
		UniqueSources: 2_900_000,
		QuerySizes:    newSizeHistogram(),
		ResponseSizes: newSizeHistogram(),
	}
	for _, sz := range legitQuerySizes {
		r.QuerySizes.Add(float64(sz.bytes), int64(r.Queries*sz.frac))
	}
	for _, sz := range legitResponseSizes {
		r.ResponseSizes.Add(float64(sz.bytes), int64(r.Responses*sz.frac))
	}
	return r
}

// MeanBaseline averages n synthetic baseline days — the "mean of the seven
// days before the event" of §3.1.
func MeanBaseline(letter byte, normalQPS float64, n int) *Report {
	if n < 1 {
		n = 1
	}
	// Baselines are deterministic per letter, so the mean of n equals one
	// day; the function exists to mirror the paper's method and to give
	// callers a place to add day-to-day jitter if they enable it.
	return SyntheticBaseline(letter, normalQPS, 0)
}

// GbpsFromQueries converts a query count over an interval into gigabits/s
// given a wire size in bytes (DNS payload; headers handled by caller).
func GbpsFromQueries(queries float64, wireBytes int, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return queries * float64(wireBytes+40) * 8 / seconds / 1e9 // +40 B IP/UDP headers and overhead (§3.1)
}
