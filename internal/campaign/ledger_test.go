package campaign

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func testRecords() []Record {
	return []Record{
		{Type: RecSpec, SpecDigest: "abc123"},
		{Type: RecStart, Scenario: "s000-x", Attempt: 0},
		{Type: RecFail, Scenario: "s000-x", Attempt: 0, Class: ClassPanic, Detail: "boom"},
		{Type: RecStart, Scenario: "s000-x", Attempt: 1},
		{Type: RecDone, Scenario: "s000-x", Outcome: json.RawMessage(`{"letters":{}}`)},
		{Type: RecStart, Scenario: "s001-y", Attempt: 0},
	}
}

func writeTestLedger(t *testing.T, recs []Record) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ledger.bin")
	led, got, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("fresh ledger returned %d records", len(got))
	}
	for _, rec := range recs {
		if err := led.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func reopen(t *testing.T, path string) []Record {
	t.Helper()
	led, recs, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	led.Close()
	return recs
}

func TestLedgerRoundTrip(t *testing.T) {
	want := testRecords()
	path := writeTestLedger(t, want)
	got := reopen(t, path)
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		wj, _ := json.Marshal(want[i])
		gj, _ := json.Marshal(got[i])
		if string(wj) != string(gj) {
			t.Errorf("record %d: got %s want %s", i, gj, wj)
		}
	}
	// ReadRecords (the read-only observer path) sees the same thing.
	ro, err := ReadRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ro) != len(want) {
		t.Fatalf("ReadRecords recovered %d records, want %d", len(ro), len(want))
	}
}

func TestLedgerEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.bin")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	led, recs, err := OpenLedger(path)
	if err != nil {
		t.Fatalf("empty file should recover as a fresh ledger: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("empty file yielded %d records", len(recs))
	}
	// And it must be appendable after recovery.
	if err := led.Append(Record{Type: RecSpec, SpecDigest: "d"}); err != nil {
		t.Fatal(err)
	}
	led.Close()
	if got := reopen(t, path); len(got) != 1 || got[0].SpecDigest != "d" {
		t.Fatalf("append after empty-file recovery lost the record: %+v", got)
	}
}

func TestLedgerTruncatedTail(t *testing.T) {
	want := testRecords()
	path := writeTestLedger(t, want)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop bytes off the end one at a time down past the last record: every
	// prefix must recover to a clean prefix of the records, never error.
	for cut := 1; cut <= 40; cut++ {
		if cut > len(full) {
			break
		}
		if err := os.WriteFile(path, full[:len(full)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got := reopen(t, path)
		if len(got) >= len(want) {
			t.Fatalf("cut %d: torn tail not discarded (%d records)", cut, len(got))
		}
		for i := range got {
			if got[i].Type != want[i].Type || got[i].Scenario != want[i].Scenario {
				t.Fatalf("cut %d: record %d diverges: %+v", cut, i, got[i])
			}
		}
	}
	// A specific torn-tail shape: everything but the final record's last
	// byte. Exactly the records before it survive, and the file is again
	// appendable (truncation repositioned the write offset).
	if err := os.WriteFile(path, full[:len(full)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	led, got, err := OpenLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want)-1 {
		t.Fatalf("recovered %d records, want %d", len(got), len(want)-1)
	}
	if err := led.Append(Record{Type: RecFail, Scenario: "s001-y", Class: ClassStall}); err != nil {
		t.Fatal(err)
	}
	led.Close()
	got = reopen(t, path)
	if len(got) != len(want) || got[len(got)-1].Class != ClassStall {
		t.Fatalf("append after truncation recovery failed: %+v", got)
	}
}

func TestLedgerFlippedChecksumByte(t *testing.T) {
	want := testRecords()
	path := writeTestLedger(t, want)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte near the end of the file (inside the final
	// record): recovery must stop at the last good entry before it.
	corrupt := append([]byte(nil), full...)
	corrupt[len(corrupt)-40] ^= 0xff
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	got := reopen(t, path)
	if len(got) != len(want)-1 {
		t.Fatalf("flipped tail byte: recovered %d records, want %d", len(got), len(want)-1)
	}

	// Flip a byte in the middle of the file: everything from the damaged
	// record on is untrusted and discarded.
	corrupt = append([]byte(nil), full...)
	corrupt[len(corrupt)/2] ^= 0x01
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	got = reopen(t, path)
	if len(got) >= len(want) {
		t.Fatalf("mid-file corruption not detected (%d records)", len(got))
	}
	for i := range got {
		if got[i].Type != want[i].Type {
			t.Fatalf("recovered prefix record %d diverges: %+v", i, got[i])
		}
	}
}

func TestLedgerBadMagicAndVersion(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "notaledger.bin")
	if err := os.WriteFile(bad, []byte("definitely not a ledger"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenLedger(bad); err == nil {
		t.Fatal("bad magic accepted")
	}

	future := filepath.Join(dir, "future.bin")
	if err := os.WriteFile(future, append([]byte(ledgerMagic), 99), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenLedger(future); !errors.Is(err, ErrLedgerVersion) {
		t.Fatalf("future version: got %v, want ErrLedgerVersion", err)
	}
}

func TestReadRecordsMissingFile(t *testing.T) {
	recs, err := ReadRecords(filepath.Join(t.TempDir(), "nope.bin"))
	if err != nil || recs != nil {
		t.Fatalf("missing file: got (%v, %v), want (nil, nil)", recs, err)
	}
}

func TestReplay(t *testing.T) {
	st := Replay(testRecords())
	if st.SpecDigest != "abc123" {
		t.Errorf("SpecDigest = %q", st.SpecDigest)
	}
	if _, ok := st.Done["s000-x"]; !ok {
		t.Error("s000-x not done")
	}
	if st.InFlight["s000-x"] {
		t.Error("done scenario still in flight")
	}
	if !st.InFlight["s001-y"] {
		t.Error("s001-y should be in flight (start without terminal record)")
	}
	if st.Fails["s000-x"] != 1 || st.LastClass["s000-x"] != ClassPanic {
		t.Errorf("fail accounting: fails=%d class=%q", st.Fails["s000-x"], st.LastClass["s000-x"])
	}

	// Quarantine terminates a scenario too.
	recs := append(testRecords(),
		Record{Type: RecFail, Scenario: "s001-y", Attempt: 0, Class: ClassStall},
		Record{Type: RecStart, Scenario: "s001-y", Attempt: 1},
		Record{Type: RecFail, Scenario: "s001-y", Attempt: 1, Class: ClassStall},
		Record{Type: RecQuarantine, Scenario: "s001-y", Attempt: 2, Class: ClassStall, Detail: "silent"},
	)
	st = Replay(recs)
	q, ok := st.Quarantined["s001-y"]
	if !ok || q.Class != ClassStall || q.Attempts != 2 {
		t.Fatalf("quarantine replay: %+v ok=%v", q, ok)
	}
	if st.InFlight["s001-y"] {
		t.Error("quarantined scenario still in flight")
	}
}
