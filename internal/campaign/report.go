package campaign

// The campaign report: every grid scenario in expansion order with its
// terminal status, plus an aggregate over whatever completed. The report
// degrades instead of failing — quarantined scenarios appear with their
// failure class, pending ones (a canceled campaign) as pending — and it
// contains only deterministic facts: recorded outcomes, IDs, classes.
// Attempt counts, backoff timings, and failure details stay in the
// ledger, which is what keeps a resumed campaign's report byte-identical
// to an uninterrupted one.

import (
	"encoding/json"
	"fmt"

	"github.com/rootevent/anycastddos/internal/analysis"
	"github.com/rootevent/anycastddos/internal/atomicio"
)

// Scenario terminal statuses in the report.
const (
	StatusCompleted   = "completed"
	StatusQuarantined = "quarantined"
	StatusPending     = "pending"
)

// Report is the aggregated campaign result (campaign.json).
type Report struct {
	Name       string `json:"name"`
	SpecDigest string `json:"spec_digest"`

	GridSize    int `json:"grid_size"`
	Completed   int `json:"completed"`
	Quarantined int `json:"quarantined"`
	Pending     int `json:"pending"`

	// Scenarios lists every grid point in expansion order.
	Scenarios []ScenarioResult `json:"scenarios"`

	// Aggregate summarizes the completed scenarios; nil when none
	// completed — a fully-degraded campaign still emits a valid report.
	Aggregate *Aggregate `json:"aggregate,omitempty"`
}

// ScenarioResult is one grid point's terminal state.
type ScenarioResult struct {
	ID    string `json:"id"`
	Index int    `json:"index"`

	Schedule      string  `json:"schedule"`
	Intensity     float64 `json:"intensity"`
	DurationScale float64 `json:"duration_scale"`
	Target        string  `json:"target"`
	Defense       string  `json:"defense"`
	Faults        string  `json:"faults"`
	Seed          int64   `json:"seed"`

	// Status is completed, quarantined, or pending.
	Status string `json:"status"`
	// FailureClass is the quarantine classification (panic, timeout,
	// stall, restarts-exhausted, canceled, exit:N, signal, bad-outcome).
	FailureClass string `json:"failure_class,omitempty"`
	// Outcome is the scenario's analysis.Outcome, present when completed.
	Outcome json.RawMessage `json:"outcome,omitempty"`
}

// Aggregate condenses the completed scenarios' outcomes.
type Aggregate struct {
	// MinEventAvailability is the worst per-letter event availability seen
	// across all completed scenarios.
	MinEventAvailability float64 `json:"min_event_availability"`
	// MeanEventAvailability averages the scenarios' mean event
	// availability.
	MeanEventAvailability float64 `json:"mean_event_availability"`
	// MaxRTTInflation is the worst RTT inflation across scenarios.
	MaxRTTInflation float64 `json:"max_rtt_inflation"`
	// TotalRouteChanges sums control-plane churn across scenarios.
	TotalRouteChanges int `json:"total_route_changes"`
	// WorstUserFailFrac is the worst per-bin user query failure fraction
	// across scenarios that ran the user-impact experiment.
	WorstUserFailFrac float64 `json:"worst_user_fail_frac"`
}

// BuildReport assembles the report for the expanded grid from replayed (or
// live) campaign state. Scenario order is grid expansion order, and
// recorded outcomes are embedded as recorded, so the same terminal state
// always serializes to the same bytes.
func BuildReport(spec *Spec, scenarios []Scenario, st *State) (*Report, error) {
	r := &Report{
		Name:       spec.Name,
		SpecDigest: st.SpecDigest,
		GridSize:   len(scenarios),
		Scenarios:  make([]ScenarioResult, 0, len(scenarios)),
	}
	var agg Aggregate
	aggInit := false
	for i := range scenarios {
		sc := &scenarios[i]
		res := ScenarioResult{
			ID:            sc.ID,
			Index:         sc.Index,
			Schedule:      sc.Schedule,
			Intensity:     sc.Intensity,
			DurationScale: sc.DurationScale,
			Target:        sc.Target,
			Defense:       sc.Defense,
			Faults:        sc.Faults,
			Seed:          sc.Seed,
		}
		if outcome, ok := st.Done[sc.ID]; ok {
			res.Status = StatusCompleted
			res.Outcome = outcome
			var out analysis.Outcome
			if err := json.Unmarshal(outcome, &out); err != nil {
				return nil, fmt.Errorf("campaign: recorded outcome for %s does not parse: %w", sc.ID, err)
			}
			if !aggInit {
				aggInit = true
				agg.MinEventAvailability = out.MinEventAvailability
				agg.MaxRTTInflation = out.MaxRTTInflation
			} else {
				if out.MinEventAvailability < agg.MinEventAvailability {
					agg.MinEventAvailability = out.MinEventAvailability
				}
				if out.MaxRTTInflation > agg.MaxRTTInflation {
					agg.MaxRTTInflation = out.MaxRTTInflation
				}
			}
			agg.MeanEventAvailability += out.MeanEventAvailability
			agg.TotalRouteChanges += out.RouteChanges
			if out.User != nil && out.User.WorstBinFailFrac > agg.WorstUserFailFrac {
				agg.WorstUserFailFrac = out.User.WorstBinFailFrac
			}
			r.Completed++
		} else if q, ok := st.Quarantined[sc.ID]; ok {
			res.Status = StatusQuarantined
			res.FailureClass = q.Class
			r.Quarantined++
		} else {
			res.Status = StatusPending
			r.Pending++
		}
		r.Scenarios = append(r.Scenarios, res)
	}
	if r.Completed > 0 {
		agg.MeanEventAvailability /= float64(r.Completed)
		r.Aggregate = &agg
	}
	return r, nil
}

// WriteReport writes the report atomically as indented JSON.
func WriteReport(path string, r *Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("campaign: encode report: %w", err)
	}
	return atomicio.WriteFileBytes(path, append(data, '\n'))
}
