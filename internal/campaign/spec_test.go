package campaign

import (
	"strings"
	"testing"

	"github.com/rootevent/anycastddos/internal/anycast"
)

func TestParseSpecDefaults(t *testing.T) {
	s, err := ParseSpec([]byte(`{"name":"tiny"}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.VPs != 120 || s.Minutes != 480 || s.Workers != 2 || s.BotnetOrigins != 25 {
		t.Errorf("scale defaults: %+v", s)
	}
	if s.Topology == nil || s.Topology.Stubs != 400 {
		t.Errorf("topology default: %+v", s.Topology)
	}
	if s.GridSize() != 1 {
		t.Errorf("default grid size = %d, want 1", s.GridSize())
	}
	sc := s.Expand()[0]
	if sc.Schedule != "nov2015" || sc.Defense != "default" || sc.Target != "paper" || sc.Seed != 1 {
		t.Errorf("default scenario: %+v", sc)
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"name":"x","typo_field":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestParseSpecValidation(t *testing.T) {
	bad := []string{
		`{"axes":{"schedules":["nostalgia2012"]}}`,
		`{"axes":{"defenses":["surrender"]}}`,
		`{"axes":{"targets":["spare:Z"]}}`,
		`{"axes":{"targets":["everything"]}}`,
		`{"axes":{"faults":["random"]}}`,
		`{"axes":{"faults":["random:notanumber"]}}`,
		`{"axes":{"intensities":[-1]}}`,
		`{"axes":{"duration_scales":[0]}}`,
		`{"chaos":[{"scenario":5,"kind":"panic","minute":0}]}`,
		`{"chaos":[{"scenario":0,"kind":"meteor","minute":0}]}`,
		`{"minutes":100,"chaos":[{"scenario":0,"kind":"panic","minute":200}]}`,
	}
	for _, src := range bad {
		if _, err := ParseSpec([]byte(src)); err == nil {
			t.Errorf("accepted invalid spec %s", src)
		}
	}
}

func TestExpandDeterministicOrderAndIDs(t *testing.T) {
	src := []byte(`{"name":"grid","axes":{
		"schedules":["nov2015","june2016"],
		"defenses":["absorb","withdraw"],
		"seeds":[1,2]}}`)
	s, err := ParseSpec(src)
	if err != nil {
		t.Fatal(err)
	}
	if s.GridSize() != 8 {
		t.Fatalf("grid size = %d, want 8", s.GridSize())
	}
	a := s.Expand()
	s2, _ := ParseSpec(src)
	b := s2.Expand()
	if len(a) != 8 || len(b) != 8 {
		t.Fatalf("expand sizes %d/%d", len(a), len(b))
	}
	seen := map[string]bool{}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Errorf("scenario %d: ID unstable: %s vs %s", i, a[i].ID, b[i].ID)
		}
		if a[i].Index != i {
			t.Errorf("scenario %d: index %d", i, a[i].Index)
		}
		if seen[a[i].ID] {
			t.Errorf("duplicate scenario ID %s", a[i].ID)
		}
		seen[a[i].ID] = true
	}
	// Seed is the rightmost (fastest-varying) axis.
	if a[0].Seed != 1 || a[1].Seed != 2 || a[0].Defense != a[1].Defense {
		t.Errorf("axis order: %+v then %+v", a[0], a[1])
	}
	// Schedule is the leftmost (slowest-varying) axis.
	if a[0].Schedule != "nov2015" || a[7].Schedule != "june2016" {
		t.Errorf("schedule order: %s ... %s", a[0].Schedule, a[7].Schedule)
	}
}

func TestSpecDigest(t *testing.T) {
	s1, _ := ParseSpec([]byte(`{"name":"a"}`))
	s2, _ := ParseSpec([]byte(`{"name":"a"}`))
	s3, _ := ParseSpec([]byte(`{"name":"a","axes":{"seeds":[2]}}`))
	if s1.Digest() != s2.Digest() {
		t.Error("same spec, different digests")
	}
	if s1.Digest() == s3.Digest() {
		t.Error("different specs, same digest")
	}
	if len(s1.Digest()) != 64 {
		t.Errorf("digest %q not sha256 hex", s1.Digest())
	}
}

func TestBuildScheduleTransforms(t *testing.T) {
	base := Scenario{Schedule: "nov2015", Intensity: 1, DurationScale: 1, Target: "paper"}
	ref, err := base.BuildSchedule()
	if err != nil {
		t.Fatal(err)
	}

	hot := base
	hot.Intensity = 2.5
	hs, err := hot.BuildSchedule()
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Events {
		if want := ref.Events[i].PerLetterQPS * 2.5; hs.Events[i].PerLetterQPS != want {
			t.Errorf("event %d: qps %v, want %v", i, hs.Events[i].PerLetterQPS, want)
		}
	}

	long := base
	long.DurationScale = 2
	ls, err := long.BuildSchedule()
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Events {
		if ls.Events[i].StartMinute != ref.Events[i].StartMinute {
			t.Errorf("event %d: start moved", i)
		}
		if want := ref.Events[i].Duration() * 2; ls.Events[i].Duration() != want {
			t.Errorf("event %d: duration %d, want %d", i, ls.Events[i].Duration(), want)
		}
	}

	all := base
	all.Target = "all"
	as, err := all.BuildSchedule()
	if err != nil {
		t.Fatal(err)
	}
	if len(as.Spared) != 0 {
		t.Errorf("target all spared %v", as.Spared)
	}

	spare := base
	spare.Target = "spare:AB"
	ss, err := spare.BuildSchedule()
	if err != nil {
		t.Fatal(err)
	}
	if !ss.Spared['A'] || !ss.Spared['B'] || len(ss.Spared) != 2 {
		t.Errorf("spare:AB spared %v", ss.Spared)
	}
}

func TestEngineConfig(t *testing.T) {
	sc := Scenario{
		Schedule: "nov2015", Intensity: 1, DurationScale: 1, Target: "paper",
		Defense: "withdraw", Faults: "random:7:light", Seed: 3,
		VPs: 50, Minutes: 100, BotnetOrigins: 10, Workers: 2,
		Topology: &TopologySpec{Tier1s: 3, Tier2s: 10, Stubs: 50},
	}
	cfg, opts, err := sc.EngineConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 3 || cfg.VPs != 50 || cfg.Minutes != 100 {
		t.Errorf("config: %+v", cfg)
	}
	if cfg.ForcePolicy == nil || *cfg.ForcePolicy != anycast.Withdraw {
		t.Errorf("ForcePolicy = %v", cfg.ForcePolicy)
	}
	if cfg.Topology == nil || cfg.Topology.Stubs != 50 || cfg.Topology.Seed != 3 {
		t.Errorf("topology: %+v", cfg.Topology)
	}
	// workers + schedule + faults
	if len(opts) != 3 {
		t.Errorf("got %d options, want 3 (workers, schedule, faults)", len(opts))
	}
}

func TestParseFaults(t *testing.T) {
	for _, ok := range []string{"", "none", "random:1", "random:42:heavy", "random:7:monitor"} {
		if _, err := ParseFaults(ok); err != nil {
			t.Errorf("ParseFaults(%q): %v", ok, err)
		}
	}
	if p, _ := ParseFaults("none"); p != nil {
		t.Error("none yielded a plan")
	}
	if p, err := ParseFaults("random:1:light"); err != nil || p == nil {
		t.Errorf("random:1:light: plan=%v err=%v", p, err)
	}
	for _, bad := range []string{"random", "random:x", "random:1:nosuch", "chaosmonkey"} {
		if _, err := ParseFaults(bad); err == nil {
			t.Errorf("ParseFaults(%q) accepted", bad)
		}
	}
}

func TestScenarioIDShape(t *testing.T) {
	s, _ := ParseSpec([]byte(`{"name":"x"}`))
	id := s.Expand()[0].ID
	if !strings.HasPrefix(id, "s000-nov2015-default-seed1-") {
		t.Errorf("ID %q has unexpected shape", id)
	}
}
