package campaign

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

func diffFixture() (*Report, *Report) {
	old := &Report{
		Name:       "grid-a",
		SpecDigest: "digest-1",
		GridSize:   3,
		Scenarios: []ScenarioResult{
			{ID: "s1", Status: StatusCompleted, Outcome: json.RawMessage(`{"avail":0.9}`)},
			{ID: "s2", Status: StatusCompleted, Outcome: json.RawMessage(`{"avail":0.8}`)},
			{ID: "s3", Status: StatusQuarantined, FailureClass: "panic"},
		},
		Aggregate: &Aggregate{MinEventAvailability: 0.8, TotalRouteChanges: 4},
	}
	new := &Report{
		Name:       "grid-a",
		SpecDigest: "digest-1",
		GridSize:   3,
		Scenarios: []ScenarioResult{
			{ID: "s1", Status: StatusCompleted, Outcome: json.RawMessage(`{"avail":0.9}`)},
			{ID: "s2", Status: StatusCompleted, Outcome: json.RawMessage(`{"avail":0.8}`)},
			{ID: "s3", Status: StatusQuarantined, FailureClass: "panic"},
		},
		Aggregate: &Aggregate{MinEventAvailability: 0.8, TotalRouteChanges: 4},
	}
	return old, new
}

func TestDiffReportsEquivalent(t *testing.T) {
	old, new := diffFixture()
	d := DiffReports(old, new)
	if !d.Empty() {
		t.Fatalf("identical reports diffed: %+v", d)
	}
	if !strings.Contains(d.Render(), "equivalent") {
		t.Fatalf("render: %q", d.Render())
	}
}

func TestDiffReportsScenarioDeltas(t *testing.T) {
	old, new := diffFixture()
	new.Scenarios[0].Outcome = json.RawMessage(`{"avail":0.5}`)                            // outcome moved
	new.Scenarios[2].Status = StatusCompleted                                              // quarantine healed
	new.Scenarios[2].FailureClass = ""                                                     // class cleared
	new.Scenarios = append(new.Scenarios, ScenarioResult{ID: "s4", Status: StatusPending}) // grid grew
	new.Aggregate.TotalRouteChanges = 9

	d := DiffReports(old, new)
	if d.Empty() || d.SpecChanged {
		t.Fatalf("diff: %+v", d)
	}
	kinds := map[string]string{}
	for _, s := range d.Scenarios {
		kinds[s.ID+"/"+s.Kind] = s.Old + "->" + s.New
	}
	if _, ok := kinds["s1/outcome"]; !ok {
		t.Fatalf("outcome delta missing: %v", kinds)
	}
	if got := kinds["s3/status"]; got != "quarantined->completed" {
		t.Fatalf("status delta: %q (%v)", got, kinds)
	}
	if got := kinds["s3/class"]; got != "panic->" {
		t.Fatalf("class delta: %q", got)
	}
	if got := kinds["s4/added"]; got != "->pending" {
		t.Fatalf("added delta: %q", got)
	}
	if len(d.Aggregate) != 1 || d.Aggregate[0].Field != "total_route_changes" ||
		d.Aggregate[0].Old != 4 || d.Aggregate[0].New != 9 {
		t.Fatalf("aggregate deltas: %+v", d.Aggregate)
	}
	out := d.Render()
	for _, want := range []string{"+ s4 (pending)", "~ s3 status: quarantined -> completed", "~ aggregate total_route_changes: 4 -> 9"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestDiffReportsRemovedAndSpec(t *testing.T) {
	old, new := diffFixture()
	new.SpecDigest = "digest-2"
	new.Scenarios = new.Scenarios[:2] // s3 gone
	d := DiffReports(old, new)
	if !d.SpecChanged {
		t.Fatal("spec change not flagged")
	}
	var removed *ScenarioDelta
	for i := range d.Scenarios {
		if d.Scenarios[i].Kind == "removed" {
			removed = &d.Scenarios[i]
		}
	}
	if removed == nil || removed.ID != "s3" || removed.Old != StatusQuarantined {
		t.Fatalf("removed delta: %+v", d.Scenarios)
	}
	if !strings.Contains(d.Render(), "- s3 (was quarantined)") {
		t.Fatalf("render:\n%s", d.Render())
	}
}

func TestDiffReportsNilAggregates(t *testing.T) {
	old, new := diffFixture()
	new.Aggregate = nil // fully-degraded rerun
	d := DiffReports(old, new)
	if len(d.Aggregate) != 2 {
		t.Fatalf("deltas against nil aggregate: %+v", d.Aggregate)
	}
}

func TestReadReportRoundTrip(t *testing.T) {
	old, _ := diffFixture()
	path := filepath.Join(t.TempDir(), "campaign.json")
	if err := WriteReport(path, old); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if d := DiffReports(old, got); !d.Empty() {
		t.Fatalf("round trip diffed: %+v", d)
	}
	if _, err := ReadReport(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
