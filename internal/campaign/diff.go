package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// ReadReport loads a campaign.json written by WriteReport.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("campaign: parse report %s: %w", path, err)
	}
	return &r, nil
}

// ScenarioDelta is one grid point that differs between two reports.
type ScenarioDelta struct {
	ID string `json:"id"`
	// Kind is added, removed, status, class, or outcome.
	Kind string `json:"kind"`
	Old  string `json:"old,omitempty"`
	New  string `json:"new,omitempty"`
}

// FieldDelta is one aggregate metric that moved between two reports.
type FieldDelta struct {
	Field string  `json:"field"`
	Old   float64 `json:"old"`
	New   float64 `json:"new"`
}

// ReportDiff is the structured difference between two campaign reports —
// the review surface for "what changed between these two sweeps": grid
// membership, per-scenario terminal states, embedded outcomes, and the
// aggregate metrics.
type ReportDiff struct {
	OldName string `json:"old_name"`
	NewName string `json:"new_name"`

	// SpecChanged reports a different spec digest: the sweeps ran
	// different grids or parameters, so scenario deltas below may reflect
	// the spec change rather than engine behavior.
	SpecChanged bool `json:"spec_changed,omitempty"`

	Scenarios []ScenarioDelta `json:"scenarios,omitempty"`
	Aggregate []FieldDelta    `json:"aggregate,omitempty"`
}

// Empty reports whether the two reports are equivalent.
func (d *ReportDiff) Empty() bool {
	return !d.SpecChanged && len(d.Scenarios) == 0 && len(d.Aggregate) == 0
}

// DiffReports compares two campaign reports scenario by scenario. Outcomes
// are compared as recorded bytes: reports serialize deterministically, so
// byte inequality means the scenario measured something different.
func DiffReports(old, new *Report) *ReportDiff {
	d := &ReportDiff{
		OldName:     old.Name,
		NewName:     new.Name,
		SpecChanged: old.SpecDigest != new.SpecDigest,
	}

	oldByID := make(map[string]*ScenarioResult, len(old.Scenarios))
	for i := range old.Scenarios {
		oldByID[old.Scenarios[i].ID] = &old.Scenarios[i]
	}
	newByID := make(map[string]*ScenarioResult, len(new.Scenarios))
	for i := range new.Scenarios {
		newByID[new.Scenarios[i].ID] = &new.Scenarios[i]
	}

	// New-report order first (it is grid expansion order), then removals.
	for i := range new.Scenarios {
		ns := &new.Scenarios[i]
		os_, ok := oldByID[ns.ID]
		if !ok {
			d.Scenarios = append(d.Scenarios, ScenarioDelta{ID: ns.ID, Kind: "added", New: ns.Status})
			continue
		}
		if os_.Status != ns.Status {
			d.Scenarios = append(d.Scenarios, ScenarioDelta{ID: ns.ID, Kind: "status", Old: os_.Status, New: ns.Status})
		}
		if os_.FailureClass != ns.FailureClass {
			d.Scenarios = append(d.Scenarios, ScenarioDelta{ID: ns.ID, Kind: "class", Old: os_.FailureClass, New: ns.FailureClass})
		}
		if os_.Status == StatusCompleted && ns.Status == StatusCompleted &&
			!bytes.Equal(compactJSON(os_.Outcome), compactJSON(ns.Outcome)) {
			d.Scenarios = append(d.Scenarios, ScenarioDelta{ID: ns.ID, Kind: "outcome",
				Old: outcomeDigest(os_.Outcome), New: outcomeDigest(ns.Outcome)})
		}
	}
	var removed []string
	for id := range oldByID {
		if _, ok := newByID[id]; !ok {
			removed = append(removed, id)
		}
	}
	sort.Strings(removed)
	for _, id := range removed {
		d.Scenarios = append(d.Scenarios, ScenarioDelta{ID: id, Kind: "removed", Old: oldByID[id].Status})
	}

	d.Aggregate = diffAggregates(old.Aggregate, new.Aggregate)
	return d
}

// compactJSON strips insignificant whitespace so outcome comparison
// survives re-indentation (WriteReport pretty-prints embedded raw JSON).
func compactJSON(raw json.RawMessage) []byte {
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		return raw
	}
	return buf.Bytes()
}

// outcomeDigest renders a short stable label for an embedded outcome so a
// diff line identifies the change without dumping the whole document.
func outcomeDigest(raw json.RawMessage) string {
	if len(raw) == 0 {
		return "(none)"
	}
	sum := uint64(14695981039346656037) // FNV-1a, stable across platforms
	for _, b := range compactJSON(raw) {
		sum ^= uint64(b)
		sum *= 1099511628211
	}
	return fmt.Sprintf("outcome:%016x", sum)
}

// diffAggregates lists every aggregate metric whose value moved.
func diffAggregates(old, new *Aggregate) []FieldDelta {
	var zero Aggregate
	if old == nil {
		old = &zero
	}
	if new == nil {
		new = &zero
	}
	fields := []struct {
		name     string
		old, new float64
	}{
		{"min_event_availability", old.MinEventAvailability, new.MinEventAvailability},
		{"mean_event_availability", old.MeanEventAvailability, new.MeanEventAvailability},
		{"max_rtt_inflation", old.MaxRTTInflation, new.MaxRTTInflation},
		{"total_route_changes", float64(old.TotalRouteChanges), float64(new.TotalRouteChanges)},
		{"worst_user_fail_frac", old.WorstUserFailFrac, new.WorstUserFailFrac},
	}
	var out []FieldDelta
	for _, f := range fields {
		if f.old != f.new {
			out = append(out, FieldDelta{Field: f.name, Old: f.old, New: f.new})
		}
	}
	return out
}

// Render formats the diff for terminals, one line per delta.
func (d *ReportDiff) Render() string {
	if d.Empty() {
		return fmt.Sprintf("campaigns %q and %q are equivalent\n", d.OldName, d.NewName)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "diff %q -> %q\n", d.OldName, d.NewName)
	if d.SpecChanged {
		b.WriteString("  spec digest changed: the grids are not the same sweep\n")
	}
	for _, s := range d.Scenarios {
		switch s.Kind {
		case "added":
			fmt.Fprintf(&b, "  + %s (%s)\n", s.ID, s.New)
		case "removed":
			fmt.Fprintf(&b, "  - %s (was %s)\n", s.ID, s.Old)
		default:
			fmt.Fprintf(&b, "  ~ %s %s: %s -> %s\n", s.ID, s.Kind, orNone(s.Old), orNone(s.New))
		}
	}
	for _, f := range d.Aggregate {
		fmt.Fprintf(&b, "  ~ aggregate %s: %g -> %g\n", f.Field, f.Old, f.New)
	}
	return b.String()
}

func orNone(s string) string {
	if s == "" {
		return "(none)"
	}
	return s
}
