package campaign

// Runner tests re-invoke the test binary as the scenario child (TestMain
// dispatch): the fake child obeys the real child contract — read
// scenario.json, heartbeat on stdout, write outcome.json, exit with the
// core.Exit* codes — but fabricates a cheap deterministic outcome instead
// of running the engine, so process isolation, classification, retries,
// quarantine, and resume are all exercised quickly and for real.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/rootevent/anycastddos/internal/analysis"
	"github.com/rootevent/anycastddos/internal/atomicio"
)

const childFlag = "-campaign-child"

// Env hooks steering the fake child, keyed by scenario ID.
const (
	envFlaky = "CAMPAIGN_TEST_FLAKY_ID" // fail (exit 1) on the first two attempts
	envSlow  = "CAMPAIGN_TEST_SLOW_ID"  // heartbeat forever, never finish
	envBomb  = "CAMPAIGN_TEST_FAIL_ALL" // fail every scenario immediately
)

func TestMain(m *testing.M) {
	if len(os.Args) > 1 && os.Args[1] == childFlag {
		childMain(os.Args[2])
		return
	}
	os.Exit(m.Run())
}

// childMain is the fake scenario child.
func childMain(scenPath string) {
	data, err := os.ReadFile(scenPath)
	if err != nil {
		fmt.Println("read scenario:", err)
		os.Exit(1)
	}
	var sc Scenario
	if err := json.Unmarshal(data, &sc); err != nil {
		fmt.Println("parse scenario:", err)
		os.Exit(1)
	}
	// First heartbeat before any work: startup time (e.g. a race-built
	// binary) must not read as a stall.
	fmt.Println(sc.ID, "starting")
	dir := filepath.Dir(scenPath)
	if os.Getenv(envBomb) != "" {
		fmt.Println("scripted global failure")
		os.Exit(1)
	}
	if os.Getenv(envFlaky) == sc.ID {
		marker := filepath.Join(dir, "flaky-attempts")
		n := 0
		if b, err := os.ReadFile(marker); err == nil {
			n, _ = strconv.Atoi(strings.TrimSpace(string(b)))
		}
		if n < 2 {
			os.WriteFile(marker, []byte(strconv.Itoa(n+1)), 0o644)
			fmt.Println("flaky failure", n)
			os.Exit(1)
		}
	}
	if os.Getenv(envSlow) == sc.ID {
		for {
			fmt.Println("still working")
			time.Sleep(5 * time.Millisecond)
		}
	}
	if sc.Chaos != nil {
		switch sc.Chaos.Kind {
		case "panic":
			fmt.Println("about to misbehave")
			panic("scripted panic")
		case "stall":
			fmt.Println("last heartbeat")
			// Not select{}: the runtime's deadlock detector would turn an
			// idle child into exit 2 and misclassify the stall as a panic.
			for {
				time.Sleep(time.Hour)
			}
		case "exit":
			fmt.Println("scripted exit")
			os.Exit(sc.Chaos.Code)
		}
	}
	out := fakeOutcome(sc.Seed)
	body, err := json.Marshal(out)
	if err != nil {
		fmt.Println("encode outcome:", err)
		os.Exit(1)
	}
	if err := atomicio.WriteFileBytes(filepath.Join(dir, OutcomeFileName), body); err != nil {
		fmt.Println("write outcome:", err)
		os.Exit(1)
	}
	fmt.Println("done")
	os.Exit(0)
}

// fakeOutcome fabricates a deterministic outcome from the scenario seed.
func fakeOutcome(seed int64) *analysis.Outcome {
	f := float64(seed%10) / 100
	return &analysis.Outcome{
		Letters: map[string]analysis.LetterOutcome{
			"A": {
				OverallAvailability: 1 - f,
				EventAvailability:   0.9 - f,
				BaselineMedianRTTMs: 30,
				EventMedianRTTMs:    30 * (1 + f),
				RTTInflation:        1 + f,
			},
		},
		MinEventAvailability:  0.9 - f,
		MeanEventAvailability: 0.9 - f,
		MaxRTTInflation:       1 + f,
		RouteChanges:          int(seed),
	}
}

// testSpec builds a tiny grid of n scenarios (seeds 1..n).
func testSpec(t *testing.T, n int, chaos []ChaosSpec) *Spec {
	t.Helper()
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	s := &Spec{Name: "test-grid", Minutes: 100, Axes: Axes{Seeds: seeds}, Chaos: chaos}
	s.fillDefaults()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func testRunnerConfig(t *testing.T) RunnerConfig {
	t.Helper()
	return RunnerConfig{
		Dir:          t.TempDir(),
		Bin:          os.Args[0],
		BaseArgs:     []string{childFlag},
		Parallel:     2,
		Timeout:      10 * time.Second,
		StallTimeout: 2 * time.Second,
		MaxAttempts:  2,
		BackoffBase:  time.Millisecond,
		BackoffCap:   5 * time.Millisecond,
		Seed:         42,
		Logf:         t.Logf,
	}
}

func TestRunCompletesGrid(t *testing.T) {
	spec := testSpec(t, 3, nil)
	rc := testRunnerConfig(t)
	rep, err := Run(context.Background(), spec, rc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GridSize != 3 || rep.Completed != 3 || rep.Quarantined != 0 || rep.Pending != 0 {
		t.Fatalf("report counts: %+v", rep)
	}
	if rep.Aggregate == nil {
		t.Fatal("no aggregate over completed scenarios")
	}
	// Seeds 1..3 → min event availability 0.9-0.03, total route changes 6.
	if got := rep.Aggregate.MinEventAvailability; got != 0.9-0.03 {
		t.Errorf("MinEventAvailability = %v", got)
	}
	if rep.Aggregate.TotalRouteChanges != 6 {
		t.Errorf("TotalRouteChanges = %d, want 6", rep.Aggregate.TotalRouteChanges)
	}
	for _, sr := range rep.Scenarios {
		if sr.Status != StatusCompleted || sr.Outcome == nil {
			t.Errorf("%s: %+v", sr.ID, sr)
		}
	}
}

func TestRunQuarantinesAndClassifies(t *testing.T) {
	// Grid of 4: scenario 1 panics, 2 stalls, 3 exits 7; scenario 0 is clean.
	spec := testSpec(t, 4, []ChaosSpec{
		{Scenario: 1, Kind: "panic", Minute: 10},
		{Scenario: 2, Kind: "stall", Minute: 10},
		{Scenario: 3, Kind: "exit", Minute: 10, Code: 7},
	})
	rc := testRunnerConfig(t)
	rc.StallTimeout = time.Second
	rep, err := Run(context.Background(), spec, rc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 1 || rep.Quarantined != 3 {
		t.Fatalf("counts: completed=%d quarantined=%d", rep.Completed, rep.Quarantined)
	}
	wantClass := map[int]string{1: ClassPanic, 2: ClassStall, 3: fmt.Sprintf("exit:%d", 7)}
	for _, sr := range rep.Scenarios {
		want, chaotic := wantClass[sr.Index]
		if !chaotic {
			if sr.Status != StatusCompleted {
				t.Errorf("scenario %d: status %s", sr.Index, sr.Status)
			}
			continue
		}
		if sr.Status != StatusQuarantined || sr.FailureClass != want {
			t.Errorf("scenario %d: status=%s class=%q, want quarantined/%q",
				sr.Index, sr.Status, sr.FailureClass, want)
		}
	}
	// The ledger holds the full forensic trail: MaxAttempts fails plus a
	// quarantine record per chaotic scenario.
	recs, err := ReadRecords(filepath.Join(rc.Dir, LedgerFileName))
	if err != nil {
		t.Fatal(err)
	}
	fails, quars := 0, 0
	for _, r := range recs {
		switch r.Type {
		case RecFail:
			fails++
		case RecQuarantine:
			quars++
			if r.Attempt != rc.MaxAttempts {
				t.Errorf("quarantine for %s after %d attempts, want %d", r.Scenario, r.Attempt, rc.MaxAttempts)
			}
		}
	}
	if fails != 3*rc.MaxAttempts || quars != 3 {
		t.Errorf("ledger: %d fails, %d quarantines", fails, quars)
	}
}

func TestRunTimeoutClass(t *testing.T) {
	spec := testSpec(t, 1, nil)
	rc := testRunnerConfig(t)
	rc.Timeout = 400 * time.Millisecond
	rc.StallTimeout = 10 * time.Second
	rc.MaxAttempts = 1
	t.Setenv(envSlow, spec.Expand()[0].ID)
	rep, err := Run(context.Background(), spec, rc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quarantined != 1 || rep.Scenarios[0].FailureClass != ClassTimeout {
		t.Fatalf("slow child: %+v", rep.Scenarios[0])
	}
}

func TestRunRetriesTransientFailure(t *testing.T) {
	spec := testSpec(t, 1, nil)
	rc := testRunnerConfig(t)
	rc.MaxAttempts = 3
	t.Setenv(envFlaky, spec.Expand()[0].ID)
	rep, err := Run(context.Background(), spec, rc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 1 {
		t.Fatalf("flaky scenario did not complete: %+v", rep.Scenarios[0])
	}
	recs, err := ReadRecords(filepath.Join(rc.Dir, LedgerFileName))
	if err != nil {
		t.Fatal(err)
	}
	fails := 0
	for _, r := range recs {
		if r.Type == RecFail {
			fails++
			if r.Class != "exit:1" {
				t.Errorf("flaky fail classified %q", r.Class)
			}
		}
	}
	if fails != 2 {
		t.Errorf("ledger shows %d fails, want 2", fails)
	}
}

func TestRunResumeSkipsCompleted(t *testing.T) {
	spec := testSpec(t, 3, nil)
	rc := testRunnerConfig(t)
	rep1, err := Run(context.Background(), spec, rc)
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.MarshalIndent(rep1, "", "  ")

	// Resuming a finished campaign must not touch a single child: the bomb
	// env makes any invocation fail loudly.
	t.Setenv(envBomb, "1")
	rc.Resume = true
	rep2, err := Run(context.Background(), spec, rc)
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := json.MarshalIndent(rep2, "", "  ")
	if string(j1) != string(j2) {
		t.Fatalf("resumed report differs:\n%s\n%s", j1, j2)
	}
}

func TestRunResumeRequeuesInFlight(t *testing.T) {
	spec := testSpec(t, 2, nil)
	rc := testRunnerConfig(t)
	scenarios := spec.Expand()

	// Hand-craft a crashed campaign: scenario 0 started but never resolved.
	led, _, err := OpenLedger(filepath.Join(rc.Dir, LedgerFileName))
	if err != nil {
		t.Fatal(err)
	}
	if err := led.Append(Record{Type: RecSpec, SpecDigest: spec.Digest()}); err != nil {
		t.Fatal(err)
	}
	if err := led.Append(Record{Type: RecStart, Scenario: scenarios[0].ID, Attempt: 0}); err != nil {
		t.Fatal(err)
	}
	led.Close()

	rc.Resume = true
	rep, err := Run(context.Background(), spec, rc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 2 {
		t.Fatalf("in-flight scenario not re-run: %+v", rep)
	}
}

func TestRunSpecMismatch(t *testing.T) {
	spec := testSpec(t, 1, nil)
	rc := testRunnerConfig(t)
	if _, err := Run(context.Background(), spec, rc); err != nil {
		t.Fatal(err)
	}
	other := testSpec(t, 2, nil)
	rc.Resume = true
	if _, err := Run(context.Background(), other, rc); err == nil || !strings.Contains(err.Error(), "different spec") {
		t.Fatalf("edited spec resumed: %v", err)
	}
}

func TestRunRefusesExistingLedgerWithoutResume(t *testing.T) {
	spec := testSpec(t, 1, nil)
	rc := testRunnerConfig(t)
	if _, err := Run(context.Background(), spec, rc); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), spec, rc); err == nil {
		t.Fatal("second fresh run over an existing ledger accepted")
	}
}

func TestRunCanceled(t *testing.T) {
	spec := testSpec(t, 1, nil)
	rc := testRunnerConfig(t)
	t.Setenv(envSlow, spec.Expand()[0].ID)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if _, err := Run(ctx, spec, rc); err == nil {
		t.Fatal("canceled campaign returned no error")
	}
}
