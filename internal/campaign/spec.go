// Package campaign sweeps a declarative grid of (attack, defense, fault)
// scenarios across isolated child processes and aggregates their outcome
// metrics into one machine-readable report.
//
// The paper answers "how well does anycast absorb a DDoS?" for one event;
// the interesting operational question is how the answer moves across the
// space of attack intensities, defense policies, and infrastructure
// faults. A Spec describes that space as axes; Expand turns it into a
// deterministic, ordered scenario list; the Runner executes each scenario
// in its own child process under a hard deadline, heartbeat-based stall
// detection, and bounded retries, recording progress in a crash-safe
// append-only Ledger so a killed campaign resumes without re-running
// completed scenarios; and the Report degrades gracefully — scenarios that
// keep failing are quarantined with a failure class instead of aborting
// the sweep.
//
// Everything that reaches the report is a deterministic function of the
// spec: scenario IDs, engine outcomes, quarantine classes. Wall-clock
// facts (attempt counts, timings) stay in the ledger, which is what makes
// a resumed campaign's report byte-identical to an uninterrupted one.
package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"

	"github.com/rootevent/anycastddos/internal/anycast"
	"github.com/rootevent/anycastddos/internal/attack"
	"github.com/rootevent/anycastddos/internal/core"
	"github.com/rootevent/anycastddos/internal/faults"
	"github.com/rootevent/anycastddos/internal/topo"
)

// Spec is a declarative scenario grid: shared engine scale plus one value
// list per axis. Expand crosses the axes in a fixed order, so the same
// spec always yields the same scenario list with the same IDs.
type Spec struct {
	// Name labels the campaign in the report.
	Name string `json:"name"`

	// Engine scale shared by every scenario. Zero values select the grid
	// defaults (small topology, 120 VPs, 480 minutes), not the paper-scale
	// ones — grids multiply whatever cost a single scenario has.
	VPs           int           `json:"vps,omitempty"`
	Minutes       int           `json:"minutes,omitempty"`
	BotnetOrigins int           `json:"botnet_origins,omitempty"`
	Workers       int           `json:"workers,omitempty"`
	Topology      *TopologySpec `json:"topology,omitempty"`

	// Axes are the swept dimensions; an empty axis means its single
	// default value.
	Axes Axes `json:"axes"`

	// Chaos injects scripted failures into specific scenarios (by grid
	// index) — the test hook behind `make campaign-smoke`, which proves a
	// panicking and a stalling scenario end up quarantined, not fatal.
	Chaos []ChaosSpec `json:"chaos,omitempty"`
}

// TopologySpec sizes the synthetic AS graph.
type TopologySpec struct {
	Tier1s int `json:"tier1s"`
	Tier2s int `json:"tier2s"`
	Stubs  int `json:"stubs"`
}

// Axes are the swept grid dimensions. Expansion order is fixed: schedule,
// intensity, duration scale, target set, defense, faults, seed — the
// rightmost axis varies fastest.
type Axes struct {
	// Schedules names base attack scenarios: "nov2015" or "june2016".
	Schedules []string `json:"schedules,omitempty"`
	// Intensities scale every event's per-letter attack rate.
	Intensities []float64 `json:"intensities,omitempty"`
	// DurationScales stretch or shrink every event window (keeping its
	// start minute).
	DurationScales []float64 `json:"duration_scales,omitempty"`
	// Targets select the attacked letter set: "paper" keeps the schedule's
	// own spared set, "all" attacks every letter, "spare:DLM" spares
	// exactly the named letters.
	Targets []string `json:"targets,omitempty"`
	// Defenses force the per-site overload policy: "default" (the paper's
	// observed mix), "absorb", or "withdraw".
	Defenses []string `json:"defenses,omitempty"`
	// Faults are fault-plan specs: "none" or "random:SEED[:PROFILE]"
	// (profiles: light, heavy, monitor).
	Faults []string `json:"faults,omitempty"`
	// Seeds are topology/engine seeds.
	Seeds []int64 `json:"seeds,omitempty"`
}

// ChaosSpec scripts a failure into one scenario.
type ChaosSpec struct {
	// Scenario is the grid index (Scenario.Index) the failure applies to.
	Scenario int `json:"scenario"`
	// Kind is "panic" (panic at Minute), "stall" (stop heartbeating at
	// Minute, forever), or "exit" (exit with Code at Minute).
	Kind string `json:"kind"`
	// Minute is the simulated minute the failure fires at.
	Minute int `json:"minute"`
	// Code is the exit status for Kind "exit".
	Code int `json:"code,omitempty"`
}

// Scenario is one fully-resolved grid point. It is self-contained: the
// child process rebuilds the engine configuration from it alone.
type Scenario struct {
	// ID is the stable scenario identifier: grid index, the human-salient
	// axes, and a short digest of every parameter.
	ID string `json:"id"`
	// Index is the 0-based position in grid expansion order.
	Index int `json:"index"`

	Schedule      string  `json:"schedule"`
	Intensity     float64 `json:"intensity"`
	DurationScale float64 `json:"duration_scale"`
	Target        string  `json:"target"`
	Defense       string  `json:"defense"`
	Faults        string  `json:"faults"`
	Seed          int64   `json:"seed"`

	VPs           int           `json:"vps"`
	Minutes       int           `json:"minutes"`
	BotnetOrigins int           `json:"botnet_origins"`
	Workers       int           `json:"workers"`
	Topology      *TopologySpec `json:"topology,omitempty"`

	Chaos *ChaosSpec `json:"chaos,omitempty"`
}

// ParseSpec decodes and validates a JSON spec, filling scale defaults.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	s := &Spec{}
	if err := dec.Decode(s); err != nil {
		return nil, fmt.Errorf("campaign: parse spec: %w", err)
	}
	s.fillDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Spec) fillDefaults() {
	if s.Name == "" {
		s.Name = "campaign"
	}
	if s.VPs == 0 {
		s.VPs = 120
	}
	if s.Minutes == 0 {
		s.Minutes = 480
	}
	if s.BotnetOrigins == 0 {
		s.BotnetOrigins = 25
	}
	if s.Workers == 0 {
		s.Workers = 2
	}
	if s.Topology == nil {
		s.Topology = &TopologySpec{Tier1s: 5, Tier2s: 40, Stubs: 400}
	}
	a := &s.Axes
	if len(a.Schedules) == 0 {
		a.Schedules = []string{"nov2015"}
	}
	if len(a.Intensities) == 0 {
		a.Intensities = []float64{1}
	}
	if len(a.DurationScales) == 0 {
		a.DurationScales = []float64{1}
	}
	if len(a.Targets) == 0 {
		a.Targets = []string{"paper"}
	}
	if len(a.Defenses) == 0 {
		a.Defenses = []string{"default"}
	}
	if len(a.Faults) == 0 {
		a.Faults = []string{"none"}
	}
	if len(a.Seeds) == 0 {
		a.Seeds = []int64{1}
	}
}

// Validate rejects a spec whose axis values cannot build a scenario. It
// runs at parse time so a bad grid fails before anything executes, not at
// scenario 37 of 64.
func (s *Spec) Validate() error {
	if s.VPs < 1 || s.Minutes < 1 || s.Workers < 1 || s.BotnetOrigins < 1 {
		return fmt.Errorf("campaign: spec scale must be positive (vps=%d minutes=%d workers=%d origins=%d)",
			s.VPs, s.Minutes, s.Workers, s.BotnetOrigins)
	}
	a := s.Axes
	for _, name := range a.Schedules {
		if _, err := baseSchedule(name); err != nil {
			return err
		}
	}
	for _, v := range a.Intensities {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("campaign: bad intensity %v", v)
		}
	}
	for _, v := range a.DurationScales {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("campaign: bad duration scale %v", v)
		}
	}
	for _, t := range a.Targets {
		if err := validateTarget(t); err != nil {
			return err
		}
	}
	for _, d := range a.Defenses {
		if _, err := forcePolicy(d); err != nil {
			return err
		}
	}
	for _, f := range a.Faults {
		if _, err := ParseFaults(f); err != nil {
			return err
		}
	}
	n := s.GridSize()
	for _, c := range s.Chaos {
		if c.Scenario < 0 || c.Scenario >= n {
			return fmt.Errorf("campaign: chaos entry targets scenario %d, grid has %d", c.Scenario, n)
		}
		switch c.Kind {
		case "panic", "stall", "exit":
		default:
			return fmt.Errorf("campaign: unknown chaos kind %q (panic, stall, or exit)", c.Kind)
		}
		if c.Minute < 0 || c.Minute >= s.Minutes {
			return fmt.Errorf("campaign: chaos minute %d outside run of %d minutes", c.Minute, s.Minutes)
		}
	}
	return nil
}

// GridSize is the number of scenarios Expand yields.
func (s *Spec) GridSize() int {
	a := s.Axes
	return len(a.Schedules) * len(a.Intensities) * len(a.DurationScales) *
		len(a.Targets) * len(a.Defenses) * len(a.Faults) * len(a.Seeds)
}

// Digest identifies the expanded grid: the SHA-256 of the canonical
// (defaults-filled) spec JSON. The ledger records it so a resume under an
// edited spec is an error, never a silently mixed campaign.
func (s *Spec) Digest() string {
	data, err := json.Marshal(s)
	if err != nil {
		// A Spec is plain data; Marshal cannot fail on it. Keep the
		// signature error-free and make the impossible loud in the digest.
		return "unmarshalable:" + err.Error()
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Expand crosses the axes into the ordered scenario list. Expansion is
// deterministic: same spec, same scenarios, same IDs, in the same order.
func (s *Spec) Expand() []Scenario {
	a := s.Axes
	out := make([]Scenario, 0, s.GridSize())
	chaosByIndex := map[int]*ChaosSpec{}
	for i := range s.Chaos {
		chaosByIndex[s.Chaos[i].Scenario] = &s.Chaos[i]
	}
	idx := 0
	for _, sched := range a.Schedules {
		for _, intensity := range a.Intensities {
			for _, dur := range a.DurationScales {
				for _, target := range a.Targets {
					for _, defense := range a.Defenses {
						for _, fspec := range a.Faults {
							for _, seed := range a.Seeds {
								sc := Scenario{
									Index:         idx,
									Schedule:      sched,
									Intensity:     intensity,
									DurationScale: dur,
									Target:        target,
									Defense:       defense,
									Faults:        fspec,
									Seed:          seed,
									VPs:           s.VPs,
									Minutes:       s.Minutes,
									BotnetOrigins: s.BotnetOrigins,
									Workers:       s.Workers,
									Topology:      s.Topology,
									Chaos:         chaosByIndex[idx],
								}
								sc.ID = sc.makeID()
								out = append(out, sc)
								idx++
							}
						}
					}
				}
			}
		}
	}
	return out
}

// makeID builds the stable scenario identifier. The digest suffix covers
// every parameter, so two grid points differing only in, say, intensity
// never collide even though the readable prefix elides it.
func (sc *Scenario) makeID() string {
	withoutID := *sc
	withoutID.ID = ""
	data, _ := json.Marshal(&withoutID)
	sum := sha256.Sum256(data)
	return fmt.Sprintf("s%03d-%s-%s-seed%d-%s",
		sc.Index, sc.Schedule, sc.Defense, sc.Seed, hex.EncodeToString(sum[:4]))
}

// EngineConfig resolves the scenario into the engine configuration and
// options (schedule, defense policy, fault plan, workers). The caller —
// the scenario child process — appends its own progress/heartbeat options.
func (sc *Scenario) EngineConfig() (core.Config, []core.Option, error) {
	cfg := core.DefaultConfig(sc.Seed)
	cfg.VPs = sc.VPs
	cfg.Minutes = sc.Minutes
	cfg.BotnetOrigins = sc.BotnetOrigins
	if sc.Topology != nil {
		cfg.Topology = &topo.Config{
			Tier1s: sc.Topology.Tier1s, Tier2s: sc.Topology.Tier2s,
			Stubs: sc.Topology.Stubs, Seed: sc.Seed,
		}
	}
	pol, err := forcePolicy(sc.Defense)
	if err != nil {
		return core.Config{}, nil, err
	}
	cfg.ForcePolicy = pol

	sched, err := sc.BuildSchedule()
	if err != nil {
		return core.Config{}, nil, err
	}
	opts := []core.Option{core.WithWorkers(sc.Workers), core.WithSchedule(sched)}
	plan, err := ParseFaults(sc.Faults)
	if err != nil {
		return core.Config{}, nil, err
	}
	if plan != nil {
		opts = append(opts, core.WithFaults(plan))
	}
	return cfg, opts, nil
}

// BuildSchedule materializes the scenario's attack schedule: the named
// base scenario with intensity, duration, and target-set transforms
// applied.
func (sc *Scenario) BuildSchedule() (*attack.Schedule, error) {
	sched, err := baseSchedule(sc.Schedule)
	if err != nil {
		return nil, err
	}
	for i := range sched.Events {
		e := &sched.Events[i]
		e.PerLetterQPS *= sc.Intensity
		if sc.DurationScale != 1 {
			d := int(math.Round(float64(e.Duration()) * sc.DurationScale))
			if d < 1 {
				d = 1
			}
			e.EndMinute = e.StartMinute + d
		}
	}
	switch {
	case sc.Target == "paper":
		// keep the schedule's own spared set
	case sc.Target == "all":
		sched.Spared = map[byte]bool{}
	case strings.HasPrefix(sc.Target, "spare:"):
		spared := map[byte]bool{}
		for _, r := range strings.TrimPrefix(sc.Target, "spare:") {
			spared[byte(r)] = true
		}
		sched.Spared = spared
	default:
		return nil, fmt.Errorf("campaign: unknown target set %q", sc.Target)
	}
	return sched, nil
}

func validateTarget(t string) error {
	if t == "paper" || t == "all" {
		return nil
	}
	if letters, ok := strings.CutPrefix(t, "spare:"); ok {
		for _, r := range letters {
			if r < 'A' || r > 'M' {
				return fmt.Errorf("campaign: target %q spares non-root letter %q", t, r)
			}
		}
		return nil
	}
	return fmt.Errorf("campaign: unknown target set %q (paper, all, or spare:LETTERS)", t)
}

func baseSchedule(name string) (*attack.Schedule, error) {
	switch name {
	case "nov2015":
		return attack.Nov2015Schedule(), nil
	case "june2016":
		return attack.June2016Schedule(), nil
	default:
		return nil, fmt.Errorf("campaign: unknown schedule %q (nov2015 or june2016)", name)
	}
}

func forcePolicy(defense string) (*anycast.Policy, error) {
	switch defense {
	case "default":
		return nil, nil
	case "absorb":
		p := anycast.Absorb
		return &p, nil
	case "withdraw":
		p := anycast.Withdraw
		return &p, nil
	default:
		return nil, fmt.Errorf("campaign: unknown defense %q (default, absorb, or withdraw)", defense)
	}
}

// ParseFaults parses a fault axis value: "" or "none" disables injection;
// "random:SEED[:PROFILE]" draws a deterministic plan (profiles: light,
// heavy, monitor).
func ParseFaults(spec string) (*faults.Plan, error) {
	if spec == "" || spec == "none" {
		return nil, nil
	}
	parts := strings.Split(spec, ":")
	if parts[0] != "random" || len(parts) < 2 || len(parts) > 3 {
		return nil, fmt.Errorf("campaign: bad faults %q: want none or random:SEED[:PROFILE]", spec)
	}
	seed, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("campaign: bad faults seed %q: %w", parts[1], err)
	}
	pr := faults.LightProfile()
	if len(parts) == 3 {
		if pr, err = faults.ProfileByName(parts[2]); err != nil {
			return nil, err
		}
	}
	return faults.RandomPlan(seed, pr), nil
}
