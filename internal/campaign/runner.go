package campaign

// The campaign runner: executes each scenario of the expanded grid in an
// isolated child process under a hard deadline, heartbeat-based stall
// detection, and bounded seeded-backoff retries. One panicking, hanging,
// or OOM-killed scenario can never take down the campaign: its failure is
// classified (panic/timeout/stall/exit code), retried, and finally
// quarantined into the report. All wall-clock use here is supervisor
// liveness timing — none of it feeds the simulation or the report, which
// stay deterministic.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/rootevent/anycastddos/internal/analysis"
	"github.com/rootevent/anycastddos/internal/atomicio"
	"github.com/rootevent/anycastddos/internal/core"
)

// Failure classes recorded in fail/quarantine records and the report.
const (
	// ClassPanic marks a child that panicked (recovered or not: exit 2).
	ClassPanic = "panic"
	// ClassTimeout marks a child killed at the per-scenario deadline.
	ClassTimeout = "timeout"
	// ClassStall marks a child killed after its heartbeats went silent.
	ClassStall = "stall"
	// ClassRestarts marks a child that exhausted its own internal restart
	// budget (exit 3, the rootevent -supervise contract).
	ClassRestarts = "restarts-exhausted"
	// ClassCanceled marks a child that reported cancellation (exit 4).
	ClassCanceled = "canceled"
	// ClassSignal marks a child killed by a signal the runner did not send.
	ClassSignal = "signal"
	// ClassBadOutcome marks a child that exited cleanly without leaving a
	// parseable outcome file.
	ClassBadOutcome = "bad-outcome"
)

// ScenarioFileName and OutcomeFileName are the per-scenario-directory
// contract between runner and child: the runner writes the scenario spec,
// the child writes its outcome next to it.
const (
	ScenarioFileName = "scenario.json"
	OutcomeFileName  = "outcome.json"
	// LedgerFileName is the campaign ledger inside the campaign directory.
	LedgerFileName = "ledger.bin"
	// ReportFileName is the aggregated campaign report.
	ReportFileName = "campaign.json"
)

// RunnerConfig tunes the campaign runner.
type RunnerConfig struct {
	// Dir is the campaign directory: the ledger, one subdirectory per
	// scenario, and the final report all live under it. Required.
	Dir string
	// Bin is the scenario child binary; BaseArgs are prepended to the
	// scenario.json path to form its argument list. The child contract:
	// read the scenario file, write OutcomeFileName next to it atomically,
	// emit output lines as liveness heartbeats, and exit with the
	// core.Exit* codes. Required.
	Bin      string
	BaseArgs []string
	// Parallel is how many scenarios run concurrently (default 2).
	Parallel int
	// Timeout is the hard per-attempt deadline (default 10m).
	Timeout time.Duration
	// StallTimeout kills an attempt whose output has been silent this long
	// (default 30s); any line the child writes counts as a heartbeat.
	StallTimeout time.Duration
	// MaxAttempts is how many classified failures a scenario may accrue
	// before quarantine (default 3). Attempts interrupted by a runner
	// crash are not failures and do not count.
	MaxAttempts int
	// BackoffBase/BackoffCap shape the capped exponential delay between a
	// scenario's retries (defaults 250ms / 5s); Seed drives its jitter.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	Seed        int64
	// Resume continues a previous campaign from its ledger. Without it, a
	// pre-existing ledger in Dir is an error — never silently mixed into.
	Resume bool
	// Logf, when set, receives one line per scenario lifecycle step.
	Logf func(format string, args ...any)
}

func (rc *RunnerConfig) fillDefaults() {
	if rc.Parallel < 1 {
		rc.Parallel = 2
	}
	if rc.Timeout <= 0 {
		rc.Timeout = 10 * time.Minute
	}
	if rc.StallTimeout <= 0 {
		rc.StallTimeout = 30 * time.Second
	}
	if rc.MaxAttempts < 1 {
		rc.MaxAttempts = 3
	}
	if rc.BackoffBase <= 0 {
		rc.BackoffBase = 250 * time.Millisecond
	}
	if rc.BackoffCap <= 0 {
		rc.BackoffCap = 5 * time.Second
	}
}

// nowNanos is the runner's liveness clock: child deadlines, stall
// detection, and backoff only — never the simulation plane or the report.
func nowNanos() int64 {
	return time.Now().UnixNano() //repolint:allow wallclock -- supervisor liveness clock, outside the simulation plane
}

type runner struct {
	cfg  RunnerConfig
	led  *Ledger
	logf func(string, ...any)

	mu sync.Mutex
	st *State
}

// Run executes (or resumes) the campaign described by spec under rc and
// returns the aggregated report. Scenario failures never fail the
// campaign — they end up quarantined in the report; only infrastructure
// failures (ledger I/O, spec mismatch, cancellation) return an error.
func Run(ctx context.Context, spec *Spec, rc RunnerConfig) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if rc.Dir == "" || rc.Bin == "" {
		return nil, fmt.Errorf("campaign: runner needs Dir and Bin")
	}
	rc.fillDefaults()
	spec.fillDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	logf := rc.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(rc.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: create dir: %w", err)
	}
	ledgerPath := filepath.Join(rc.Dir, LedgerFileName)
	if !rc.Resume {
		if _, err := os.Stat(ledgerPath); err == nil {
			return nil, fmt.Errorf("campaign: %s already has a ledger; pass -resume to continue it or use a fresh directory", rc.Dir)
		}
	}
	led, recs, err := OpenLedger(ledgerPath)
	if err != nil {
		return nil, err
	}
	defer led.Close() //repolint:allow syncclose -- every Append fsyncs before returning; close has nothing left to flush
	st := Replay(recs)
	digest := spec.Digest()
	switch {
	case st.SpecDigest == "":
		if err := led.Append(Record{Type: RecSpec, SpecDigest: digest}); err != nil {
			return nil, err
		}
		st.SpecDigest = digest
	case st.SpecDigest != digest:
		return nil, fmt.Errorf("%w: ledger digest %.12s…, spec digest %.12s…", ErrSpecMismatch, st.SpecDigest, digest)
	}

	scenarios := spec.Expand()
	r := &runner{cfg: rc, led: led, logf: logf, st: st}
	var pending []*Scenario
	requeued := 0
	for i := range scenarios {
		sc := &scenarios[i]
		if _, done := st.Done[sc.ID]; done {
			continue
		}
		if _, q := st.Quarantined[sc.ID]; q {
			continue
		}
		if st.InFlight[sc.ID] {
			requeued++
		}
		pending = append(pending, sc)
	}
	logf("campaign %q: %d scenarios (%d done, %d quarantined, %d to run, %d re-queued in-flight)",
		spec.Name, len(scenarios), len(st.Done), len(st.Quarantined), len(pending), requeued)

	if err := r.runPool(ctx, pending); err != nil {
		return nil, err
	}
	return BuildReport(spec, scenarios, r.snapshotState())
}

// runPool drains pending through cfg.Parallel workers, stopping the whole
// pool at the first infrastructure error.
func (r *runner) runPool(ctx context.Context, pending []*Scenario) error {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	queue := make(chan *Scenario)
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	for w := 0; w < r.cfg.Parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sc := range queue {
				if err := r.runScenario(runCtx, sc); err != nil {
					errOnce.Do(func() { firstErr = err; cancel() })
					return
				}
			}
		}()
	}
feed:
	for _, sc := range pending {
		select {
		case queue <- sc:
		case <-runCtx.Done():
			break feed
		}
	}
	close(queue)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// runScenario drives one scenario to a terminal state: done in the ledger,
// quarantined in the ledger, or an infrastructure error.
func (r *runner) runScenario(ctx context.Context, sc *Scenario) error {
	r.mu.Lock()
	fails := r.st.Fails[sc.ID]
	r.mu.Unlock()
	rng := rand.New(rand.NewSource(r.cfg.Seed ^ int64(fnvHash(sc.ID))))
	// Fast-forward the jitter stream past backoffs already taken in a
	// previous runner life, so retry pacing stays seeded per scenario.
	for i := 0; i < fails; i++ {
		_ = rng.Float64()
	}
	for {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("campaign: canceled before %s attempt %d: %w", sc.ID, fails, err)
		}
		if err := r.led.Append(Record{Type: RecStart, Scenario: sc.ID, Attempt: fails}); err != nil {
			return err
		}
		outcome, class, detail, err := r.execAttempt(ctx, sc, fails)
		if err != nil {
			return err
		}
		if class == "" {
			if err := r.led.Append(Record{Type: RecDone, Scenario: sc.ID, Outcome: outcome}); err != nil {
				return err
			}
			r.mu.Lock()
			r.st.Done[sc.ID] = outcome
			r.mu.Unlock()
			r.logf("%s: completed (attempt %d)", sc.ID, fails)
			return nil
		}
		fails++
		if err := r.led.Append(Record{Type: RecFail, Scenario: sc.ID, Attempt: fails - 1, Class: class, Detail: detail}); err != nil {
			return err
		}
		r.mu.Lock()
		r.st.Fails[sc.ID] = fails
		r.st.LastClass[sc.ID] = class
		r.mu.Unlock()
		if fails >= r.cfg.MaxAttempts {
			q := Quarantine{Class: class, Detail: detail, Attempts: fails}
			if err := r.led.Append(Record{Type: RecQuarantine, Scenario: sc.ID, Attempt: fails, Class: class, Detail: detail}); err != nil {
				return err
			}
			r.mu.Lock()
			r.st.Quarantined[sc.ID] = q
			r.mu.Unlock()
			r.logf("%s: quarantined after %d attempts (%s)", sc.ID, fails, class)
			return nil
		}
		backoff := backoffDelay(r.cfg.BackoffBase, r.cfg.BackoffCap, fails-1, rng)
		r.logf("%s: attempt %d failed (%s), retrying in %v", sc.ID, fails-1, class, backoff)
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return fmt.Errorf("campaign: canceled during %s backoff: %w", sc.ID, ctx.Err())
		}
	}
}

// execAttempt runs one child process for sc. It returns the canonical
// outcome JSON on success (class ""), or a failure class and detail; err
// is reserved for infrastructure failures that must abort the campaign.
func (r *runner) execAttempt(ctx context.Context, sc *Scenario, attempt int) (json.RawMessage, string, string, error) {
	dir := filepath.Join(r.cfg.Dir, "scenarios", sc.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, "", "", fmt.Errorf("campaign: scenario dir: %w", err)
	}
	scenPath := filepath.Join(dir, ScenarioFileName)
	outPath := filepath.Join(dir, OutcomeFileName)
	data, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		return nil, "", "", fmt.Errorf("campaign: encode scenario: %w", err)
	}
	if err := atomicio.WriteFileBytes(scenPath, append(data, '\n')); err != nil {
		return nil, "", "", err
	}
	// Drop any stale outcome so a child that dies before writing cannot be
	// mistaken for a success by this attempt's readback.
	if err := os.Remove(outPath); err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, "", "", fmt.Errorf("campaign: clear stale outcome: %w", err)
	}

	args := append(append([]string(nil), r.cfg.BaseArgs...), scenPath)
	cmd := exec.Command(r.cfg.Bin, args...)
	var tail outputTail
	cmd.Stdout = &tail
	cmd.Stderr = &tail
	start := nowNanos()
	tail.lastBeat.Store(start)
	if err := cmd.Start(); err != nil {
		return nil, "", "", fmt.Errorf("campaign: start scenario child: %w", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()

	killClass := ""
	killDetail := ""
	kill := func(class, detail string) {
		killClass, killDetail = class, detail
		_ = cmd.Process.Kill()
	}
	ticker := time.NewTicker(25 * time.Millisecond)
	defer ticker.Stop()
	var werr error
wait:
	for {
		select {
		case werr = <-done:
			break wait
		case <-ctx.Done():
			kill(ClassCanceled, "campaign canceled")
			<-done
			return nil, "", "", fmt.Errorf("campaign: canceled while running %s: %w", sc.ID, ctx.Err())
		case <-ticker.C:
			now := nowNanos()
			if age := time.Duration(now - tail.lastBeat.Load()); age >= r.cfg.StallTimeout {
				kill(ClassStall, fmt.Sprintf("no output for %v at attempt %d", age.Round(time.Millisecond), attempt))
				werr = <-done
				break wait
			}
			if run := time.Duration(now - start); run >= r.cfg.Timeout {
				kill(ClassTimeout, fmt.Sprintf("exceeded the %v scenario deadline", r.cfg.Timeout))
				werr = <-done
				break wait
			}
		}
	}

	if killClass != "" {
		return nil, killClass, killDetail + tail.suffix(), nil
	}
	if werr != nil {
		var ee *exec.ExitError
		if errors.As(werr, &ee) {
			return nil, classForExit(ee.ExitCode()), werr.Error() + tail.suffix(), nil
		}
		return nil, "", "", fmt.Errorf("campaign: wait for scenario child: %w", werr)
	}
	outcome, perr := readOutcome(outPath)
	if perr != nil {
		return nil, ClassBadOutcome, perr.Error() + tail.suffix(), nil
	}
	return outcome, "", "", nil
}

// readOutcome loads and canonicalizes the child's outcome file: it must
// parse as an analysis.Outcome, and the ledger stores the compact
// re-marshaled form so resumed and fresh reports embed identical bytes.
func readOutcome(path string) (json.RawMessage, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: child exited 0 without a readable outcome: %w", err)
	}
	var out analysis.Outcome
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("campaign: child outcome does not parse: %w", err)
	}
	canon, err := json.Marshal(&out)
	if err != nil {
		return nil, fmt.Errorf("campaign: re-encode outcome: %w", err)
	}
	return canon, nil
}

// classForExit maps a child exit status to a failure class, following the
// core.Exit* contract; ExitCode -1 means signal-killed.
func classForExit(code int) string {
	switch code {
	case -1:
		return ClassSignal
	case core.ExitPanic:
		return ClassPanic
	case core.ExitRestartsExhausted:
		return ClassRestarts
	case core.ExitCanceled:
		return ClassCanceled
	default:
		return fmt.Sprintf("exit:%d", code)
	}
}

// snapshotState copies the runner's state for report building.
func (r *runner) snapshotState() *State {
	r.mu.Lock()
	defer r.mu.Unlock()
	cp := &State{
		SpecDigest:  r.st.SpecDigest,
		Done:        make(map[string]json.RawMessage, len(r.st.Done)),
		Quarantined: make(map[string]Quarantine, len(r.st.Quarantined)),
		Fails:       make(map[string]int, len(r.st.Fails)),
		LastClass:   make(map[string]string, len(r.st.LastClass)),
		InFlight:    make(map[string]bool, len(r.st.InFlight)),
	}
	for k, v := range r.st.Done {
		cp.Done[k] = v
	}
	for k, v := range r.st.Quarantined {
		cp.Quarantined[k] = v
	}
	for k, v := range r.st.Fails {
		cp.Fails[k] = v
	}
	for k, v := range r.st.LastClass {
		cp.LastClass[k] = v
	}
	for k, v := range r.st.InFlight {
		cp.InFlight[k] = v
	}
	return cp
}

// outputTail collects the child's output: every write is a liveness
// heartbeat, and a bounded tail is kept for failure detail.
type outputTail struct {
	lastBeat atomic.Int64

	mu  sync.Mutex
	buf []byte
}

// tailBytes bounds how much child output is kept for failure detail.
const tailBytes = 2048

func (t *outputTail) Write(p []byte) (int, error) {
	t.lastBeat.Store(nowNanos())
	t.mu.Lock()
	t.buf = append(t.buf, p...)
	if len(t.buf) > tailBytes {
		t.buf = append(t.buf[:0], t.buf[len(t.buf)-tailBytes:]...)
	}
	t.mu.Unlock()
	return len(p), nil
}

// suffix renders the kept tail for embedding in a failure detail.
func (t *outputTail) suffix() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := strings.TrimSpace(string(t.buf))
	if s == "" {
		return ""
	}
	return "; child output tail: " + s
}

// backoffDelay is the capped exponential retry delay with seeded jitter in
// [0.5, 1.0] of the nominal value.
func backoffDelay(base, cap0 time.Duration, attempt int, rng *rand.Rand) time.Duration {
	d := base
	for i := 0; i < attempt && d < cap0; i++ {
		d *= 2
	}
	if d > cap0 {
		d = cap0
	}
	return time.Duration(float64(d) * (0.5 + 0.5*rng.Float64()))
}

// fnvHash is the scenario-ID hash that keys per-scenario retry jitter.
func fnvHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
