package campaign

// The campaign ledger: a crash-safe, append-only record of scenario
// lifecycle events, built on the shared internal/ledger framing (every
// record is length-prefixed canonical JSON followed by its SHA-256, every
// append fsynced), so a SIGKILL of the runner can at worst tear the final
// record — which recovery detects and truncates away. A resumed campaign
// replays the ledger to learn which scenarios completed (with their
// recorded outcomes, reused verbatim so the final report is
// byte-identical), which were quarantined, and which were in flight and
// must be re-queued.

import (
	"encoding/json"
	"errors"
	"fmt"

	"github.com/rootevent/anycastddos/internal/ledger"
)

// ledgerFormat identifies campaign ledger files: the RDNSCLGR magic and the
// current record-format version byte.
var ledgerFormat = ledger.Format{Magic: "RDNSCLGR", Version: 1}

// ledgerMagic is kept for tests that construct raw ledger headers.
const ledgerMagic = "RDNSCLGR"

// ErrLedgerVersion marks a ledger written by an incompatible format
// version.
var ErrLedgerVersion = errors.New("campaign: unsupported ledger version")

// ErrSpecMismatch marks a resume whose spec digest differs from the one
// the ledger was started with.
var ErrSpecMismatch = errors.New("campaign: ledger belongs to a different spec")

// Record types, in lifecycle order.
const (
	// RecSpec is the first record: the campaign's spec digest.
	RecSpec = "spec"
	// RecStart marks one scenario attempt starting.
	RecStart = "start"
	// RecFail marks one attempt failing, with its classification.
	RecFail = "fail"
	// RecDone marks a scenario completing, with its outcome JSON.
	RecDone = "done"
	// RecQuarantine marks a scenario abandoned after exhausting retries.
	RecQuarantine = "quarantine"
)

// Record is one ledger entry.
type Record struct {
	Type     string `json:"type"`
	Scenario string `json:"scenario,omitempty"`
	// Attempt is the 0-based attempt number for start/fail records.
	Attempt int `json:"attempt,omitempty"`
	// Class is the failure classification for fail/quarantine records:
	// "panic", "timeout", "stall", "restarts-exhausted", "canceled",
	// "exit:N", "signal", or "bad-outcome".
	Class string `json:"class,omitempty"`
	// Detail is a human-readable failure description (tail of the child's
	// output); never part of the report.
	Detail string `json:"detail,omitempty"`
	// SpecDigest is set on spec records.
	SpecDigest string `json:"spec_digest,omitempty"`
	// Outcome is the scenario's outcome JSON (analysis.Outcome), recorded
	// verbatim on done records and reused verbatim by resumed reports.
	Outcome json.RawMessage `json:"outcome,omitempty"`
}

// Ledger is an open, append-positioned campaign ledger. Append is safe
// for concurrent use by the runner's scenario workers.
type Ledger struct {
	l *ledger.Ledger
}

// decodeRecords unmarshals recovered payloads; the shared framing already
// verified their checksums, and the recordValid gate already rejected
// payloads that do not parse, so these unmarshals cannot fail.
func decodeRecords(payloads [][]byte) []Record {
	recs := make([]Record, 0, len(payloads))
	for _, p := range payloads {
		var rec Record
		if err := json.Unmarshal(p, &rec); err != nil {
			break // unreachable: recordValid filtered this payload
		}
		recs = append(recs, rec)
	}
	if len(recs) == 0 {
		return nil
	}
	return recs
}

// recordValid ends the readable prefix at the first checksum-valid payload
// that nonetheless fails to parse as a Record — preserving the recovery
// semantics the runner has always had.
func recordValid(payload []byte) bool {
	var rec Record
	return json.Unmarshal(payload, &rec) == nil
}

// translateErr maps shared-framing errors onto the campaign sentinels.
func translateErr(err error) error {
	if errors.Is(err, ledger.ErrVersion) {
		return fmt.Errorf("%w: %w", ErrLedgerVersion, err)
	}
	return err
}

// OpenLedger opens (creating if absent) the ledger at path, recovers the
// readable record prefix, truncates any torn or corrupt tail, and returns
// the ledger positioned for appends plus the recovered records. A torn
// final record — the expected debris of a SIGKILLed runner — is silently
// discarded; so is anything after a corrupted record, since nothing past
// a bad length prefix can be trusted.
func OpenLedger(path string) (*Ledger, []Record, error) {
	l, payloads, err := ledger.Open(path, ledgerFormat, recordValid)
	if err != nil {
		return nil, nil, translateErr(err)
	}
	return &Ledger{l: l}, decodeRecords(payloads), nil
}

// ReadRecords recovers the readable records of the ledger at path without
// opening it for writing (and without truncating the tail) — the
// observation path used by the soak harness while a runner is live. A
// missing file reads as an empty ledger.
func ReadRecords(path string) ([]Record, error) {
	payloads, err := ledger.Read(path, ledgerFormat, recordValid)
	if err != nil {
		return nil, translateErr(err)
	}
	return decodeRecords(payloads), nil
}

// Append encodes, writes, and fsyncs one record. The write is a single
// contiguous buffer, so a crash mid-append tears at most this record —
// exactly what recovery truncates away.
func (l *Ledger) Append(rec Record) error {
	payload, err := json.Marshal(&rec)
	if err != nil {
		return fmt.Errorf("campaign: encode ledger record: %w", err)
	}
	if err := l.l.Append(payload); err != nil {
		return fmt.Errorf("campaign: ledger: %w", err)
	}
	return nil
}

// Close releases the ledger file.
func (l *Ledger) Close() error {
	return l.l.Close()
}

// Quarantine is one permanently-failed scenario's terminal state.
type Quarantine struct {
	// Class is the final failure classification.
	Class string
	// Detail is the final failure's description.
	Detail string
	// Attempts is how many attempts failed before giving up.
	Attempts int
}

// State is the campaign position a ledger replay yields.
type State struct {
	// SpecDigest is the digest the campaign was started with ("" for a
	// fresh ledger).
	SpecDigest string
	// Done maps completed scenario IDs to their recorded outcome JSON.
	Done map[string]json.RawMessage
	// Quarantined maps permanently-failed scenario IDs to their terminal
	// state.
	Quarantined map[string]Quarantine
	// Fails counts classified attempt failures per scenario — the retry
	// budget already spent. Started-but-unresolved attempts (the runner
	// died mid-flight) deliberately do not count: the scenario is
	// re-queued at the same budget.
	Fails map[string]int
	// LastClass remembers each scenario's most recent failure class.
	LastClass map[string]string
	// InFlight lists scenarios with a start record but no terminal record
	// — the ones a resumed runner re-queues.
	InFlight map[string]bool
}

// Replay folds ledger records into campaign state.
func Replay(recs []Record) *State {
	st := &State{
		Done:        map[string]json.RawMessage{},
		Quarantined: map[string]Quarantine{},
		Fails:       map[string]int{},
		LastClass:   map[string]string{},
		InFlight:    map[string]bool{},
	}
	for _, rec := range recs {
		switch rec.Type {
		case RecSpec:
			st.SpecDigest = rec.SpecDigest
		case RecStart:
			st.InFlight[rec.Scenario] = true
		case RecFail:
			st.Fails[rec.Scenario]++
			st.LastClass[rec.Scenario] = rec.Class
			delete(st.InFlight, rec.Scenario)
		case RecDone:
			st.Done[rec.Scenario] = rec.Outcome
			delete(st.InFlight, rec.Scenario)
		case RecQuarantine:
			st.Quarantined[rec.Scenario] = Quarantine{
				Class: rec.Class, Detail: rec.Detail, Attempts: rec.Attempt,
			}
			delete(st.InFlight, rec.Scenario)
		}
	}
	return st
}
