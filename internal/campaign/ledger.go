package campaign

// The campaign ledger: a crash-safe, append-only record of scenario
// lifecycle events. Every record is length-prefixed, canonically encoded
// JSON followed by its SHA-256, and every append is fsynced, so a SIGKILL
// of the runner can at worst tear the final record — which recovery
// detects and truncates away. A resumed campaign replays the ledger to
// learn which scenarios completed (with their recorded outcomes, reused
// verbatim so the final report is byte-identical), which were quarantined,
// and which were in flight and must be re-queued.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// ledgerMagic opens every ledger file; the version byte follows it.
const ledgerMagic = "RDNSCLGR"

// ledgerVersion is the current record-format version.
const ledgerVersion = 1

// maxRecordBytes caps one record's payload so a corrupted length prefix
// cannot drive a huge allocation.
const maxRecordBytes = 16 << 20

// ErrLedgerVersion marks a ledger written by an incompatible format
// version.
var ErrLedgerVersion = errors.New("campaign: unsupported ledger version")

// ErrSpecMismatch marks a resume whose spec digest differs from the one
// the ledger was started with.
var ErrSpecMismatch = errors.New("campaign: ledger belongs to a different spec")

// Record types, in lifecycle order.
const (
	// RecSpec is the first record: the campaign's spec digest.
	RecSpec = "spec"
	// RecStart marks one scenario attempt starting.
	RecStart = "start"
	// RecFail marks one attempt failing, with its classification.
	RecFail = "fail"
	// RecDone marks a scenario completing, with its outcome JSON.
	RecDone = "done"
	// RecQuarantine marks a scenario abandoned after exhausting retries.
	RecQuarantine = "quarantine"
)

// Record is one ledger entry.
type Record struct {
	Type     string `json:"type"`
	Scenario string `json:"scenario,omitempty"`
	// Attempt is the 0-based attempt number for start/fail records.
	Attempt int `json:"attempt,omitempty"`
	// Class is the failure classification for fail/quarantine records:
	// "panic", "timeout", "stall", "restarts-exhausted", "canceled",
	// "exit:N", "signal", or "bad-outcome".
	Class string `json:"class,omitempty"`
	// Detail is a human-readable failure description (tail of the child's
	// output); never part of the report.
	Detail string `json:"detail,omitempty"`
	// SpecDigest is set on spec records.
	SpecDigest string `json:"spec_digest,omitempty"`
	// Outcome is the scenario's outcome JSON (analysis.Outcome), recorded
	// verbatim on done records and reused verbatim by resumed reports.
	Outcome json.RawMessage `json:"outcome,omitempty"`
}

// Ledger is an open, append-positioned campaign ledger. Append is safe
// for concurrent use by the runner's scenario workers.
type Ledger struct {
	mu sync.Mutex
	f  *os.File
}

// OpenLedger opens (creating if absent) the ledger at path, recovers the
// readable record prefix, truncates any torn or corrupt tail, and returns
// the ledger positioned for appends plus the recovered records. A torn
// final record — the expected debris of a SIGKILLed runner — is silently
// discarded; so is anything after a corrupted record, since nothing past
// a bad length prefix can be trusted.
func OpenLedger(path string) (*Ledger, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("campaign: open ledger: %w", err)
	}
	// The file is open for writing, so even on these abort paths the Close
	// error rides along with the primary failure instead of being dropped.
	fail := func(e error) (*Ledger, []Record, error) {
		return nil, nil, errors.Join(e, f.Close())
	}
	recs, good, err := recoverRecords(f)
	if err != nil {
		return fail(err)
	}
	if err := f.Truncate(good); err != nil {
		return fail(fmt.Errorf("campaign: truncate torn ledger tail: %w", err))
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		return fail(fmt.Errorf("campaign: seek ledger: %w", err))
	}
	l := &Ledger{f: f}
	if good == 0 {
		if err := l.writeHeader(); err != nil {
			return fail(err)
		}
	}
	return l, recs, nil
}

// ReadRecords recovers the readable records of the ledger at path without
// opening it for writing (and without truncating the tail) — the
// observation path used by the soak harness while a runner is live. A
// missing file reads as an empty ledger.
func ReadRecords(path string) ([]Record, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: read ledger: %w", err)
	}
	defer f.Close()
	recs, _, err := recoverRecords(f)
	return recs, err
}

// recoverRecords parses records from the start of f, returning them along
// with the byte offset after the last fully-valid record (the truncation
// point). Only a wrong magic or an incompatible version is an error:
// torn and corrupt data simply ends the readable prefix.
func recoverRecords(f *os.File) ([]Record, int64, error) {
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, 0, fmt.Errorf("campaign: read ledger: %w", err)
	}
	headerLen := len(ledgerMagic) + 1
	if len(data) < headerLen {
		// Empty or torn header: treat the whole file as absent.
		return nil, 0, nil
	}
	if string(data[:len(ledgerMagic)]) != ledgerMagic {
		return nil, 0, fmt.Errorf("campaign: %s is not a campaign ledger (bad magic)", f.Name())
	}
	if v := data[len(ledgerMagic)]; v != ledgerVersion {
		return nil, 0, fmt.Errorf("%w: ledger version %d, this build reads %d", ErrLedgerVersion, v, ledgerVersion)
	}
	var recs []Record
	off := headerLen
	good := int64(off)
	for {
		rec, next, ok := parseRecord(data, off)
		if !ok {
			break
		}
		recs = append(recs, rec)
		off = next
		good = int64(off)
	}
	return recs, good, nil
}

// parseRecord reads one record at off; ok is false at a clean end of
// file, a torn tail, or any corruption.
func parseRecord(data []byte, off int) (Record, int, bool) {
	var zero Record
	if off+4 > len(data) {
		return zero, 0, false
	}
	n := int(binary.LittleEndian.Uint32(data[off:]))
	if n <= 0 || n > maxRecordBytes || off+4+n+sha256.Size > len(data) {
		return zero, 0, false
	}
	payload := data[off+4 : off+4+n]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], data[off+4+n:off+4+n+sha256.Size]) {
		return zero, 0, false
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return zero, 0, false
	}
	return rec, off + 4 + n + sha256.Size, true
}

// writeHeader emits the magic and version, durably.
func (l *Ledger) writeHeader() error {
	hdr := append([]byte(ledgerMagic), ledgerVersion)
	if _, err := l.f.Write(hdr); err != nil {
		return fmt.Errorf("campaign: write ledger header: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("campaign: sync ledger: %w", err)
	}
	return nil
}

// Append encodes, writes, and fsyncs one record. The write is a single
// contiguous buffer, so a crash mid-append tears at most this record —
// exactly what recovery truncates away.
func (l *Ledger) Append(rec Record) error {
	payload, err := json.Marshal(&rec)
	if err != nil {
		return fmt.Errorf("campaign: encode ledger record: %w", err)
	}
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("campaign: ledger record of %d bytes exceeds the %d cap", len(payload), maxRecordBytes)
	}
	buf := make([]byte, 0, 4+len(payload)+sha256.Size)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	sum := sha256.Sum256(payload)
	buf = append(buf, sum[:]...)

	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("campaign: append ledger record: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("campaign: sync ledger: %w", err)
	}
	return nil
}

// Close releases the ledger file.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// Quarantine is one permanently-failed scenario's terminal state.
type Quarantine struct {
	// Class is the final failure classification.
	Class string
	// Detail is the final failure's description.
	Detail string
	// Attempts is how many attempts failed before giving up.
	Attempts int
}

// State is the campaign position a ledger replay yields.
type State struct {
	// SpecDigest is the digest the campaign was started with ("" for a
	// fresh ledger).
	SpecDigest string
	// Done maps completed scenario IDs to their recorded outcome JSON.
	Done map[string]json.RawMessage
	// Quarantined maps permanently-failed scenario IDs to their terminal
	// state.
	Quarantined map[string]Quarantine
	// Fails counts classified attempt failures per scenario — the retry
	// budget already spent. Started-but-unresolved attempts (the runner
	// died mid-flight) deliberately do not count: the scenario is
	// re-queued at the same budget.
	Fails map[string]int
	// LastClass remembers each scenario's most recent failure class.
	LastClass map[string]string
	// InFlight lists scenarios with a start record but no terminal record
	// — the ones a resumed runner re-queues.
	InFlight map[string]bool
}

// Replay folds ledger records into campaign state.
func Replay(recs []Record) *State {
	st := &State{
		Done:        map[string]json.RawMessage{},
		Quarantined: map[string]Quarantine{},
		Fails:       map[string]int{},
		LastClass:   map[string]string{},
		InFlight:    map[string]bool{},
	}
	for _, rec := range recs {
		switch rec.Type {
		case RecSpec:
			st.SpecDigest = rec.SpecDigest
		case RecStart:
			st.InFlight[rec.Scenario] = true
		case RecFail:
			st.Fails[rec.Scenario]++
			st.LastClass[rec.Scenario] = rec.Class
			delete(st.InFlight, rec.Scenario)
		case RecDone:
			st.Done[rec.Scenario] = rec.Outcome
			delete(st.InFlight, rec.Scenario)
		case RecQuarantine:
			st.Quarantined[rec.Scenario] = Quarantine{
				Class: rec.Class, Detail: rec.Detail, Attempts: rec.Attempt,
			}
			delete(st.InFlight, rec.Scenario)
		}
	}
	return st
}
