// Package anycast models the Root DNS deployments of Table 2 of the paper:
// 13 letters, each an independent anycast (or unicast) service with its own
// site list, routing scope, capacities, and stress policy.
//
// The paper's central observation is that under DDoS, sites follow one of
// two emergent policies (§2.2): *withdraw* — pull BGP announcements and
// shift both good and bad traffic elsewhere — or *absorb* — keep answering
// as a "degraded absorber", dropping a fraction of queries and inflating
// RTTs. Policies here are attributes of sites; the core evaluator applies
// them when a site's offered load exceeds capacity.
package anycast

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/rootevent/anycastddos/internal/geo"
	"github.com/rootevent/anycastddos/internal/topo"
)

// Policy is a site's behaviour when overloaded.
type Policy uint8

// Site stress policies.
const (
	// Absorb keeps the site announced; excess queries are dropped and
	// latency grows with queue depth ("degraded absorber", §2.2).
	Absorb Policy = iota
	// Withdraw pulls the site's BGP announcement once overload persists,
	// moving its whole catchment to other sites (the "waterbed").
	Withdraw
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case Absorb:
		return "absorb"
	case Withdraw:
		return "withdraw"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// ServerMode describes how a site's load balancer exposes its servers to
// legitimate clients under attack (§3.5).
type ServerMode uint8

// Server modes, matching the two behaviours in Figures 12/13.
const (
	// ServersShared spreads overload across all servers: every server
	// keeps answering a fraction of probes (K-NRT behaviour).
	ServersShared ServerMode = iota
	// ServersIsolate concentrates surviving probe traffic on a single
	// server under overload, with the chosen server changing between
	// events (K-FRA behaviour).
	ServersIsolate
)

// String returns the server-mode name.
func (m ServerMode) String() string {
	switch m {
	case ServersShared:
		return "shared"
	case ServersIsolate:
		return "isolate"
	default:
		return fmt.Sprintf("ServerMode(%d)", uint8(m))
	}
}

// Site is one anycast site of a letter.
type Site struct {
	Letter      byte
	Code        string // IATA city code; the site is named <Letter>-<Code>
	City        geo.City
	Local       bool // NO_EXPORT-scoped announcement (Table 2 "local" sites)
	CapacityQPS float64
	NumServers  int
	Policy      Policy
	ServerMode  ServerMode
	// HotServer, if >= 1, identifies a server that carries a
	// disproportionate share under ServersShared (K-NRT-S2, §3.5).
	HotServer int
	// Uplinks is the number of BGP announcements (upstream sessions)
	// this site makes; multi-uplink sites split their catchment.
	Uplinks int
	// ShallowBuffers marks sites whose ingress drops excess traffic
	// without deep queueing: overload produces loss but little RTT
	// inflation (B-Root's observed behaviour, §3.2.1).
	ShallowBuffers bool
	// MajorTransit marks sites hosted on top-layer transit regardless of
	// capacity (K-NRT: a well-connected site with modest hardware, which
	// is exactly why the events crushed it).
	MajorTransit bool
	// SlowRestore marks flapped sessions that stay down long after the
	// stress ends (an upstream in no hurry to re-enable the session) —
	// the mechanism behind the paper's group-4 VPs that flip away and
	// stay at their new site (§3.4.2).
	SlowRestore bool
	// FlappyUplinks is how many of those sessions fail (withdraw and
	// later return) under sustained overload even at Absorb sites —
	// the paper notes withdrawals can *emerge* from BGP session failure
	// under load (§2.2). K-LHR lost nearly all of its catchment this
	// way and K-FRA about half (§3.4.2).
	FlappyUplinks int
	// Host is the AS behind the site's first uplink; assigned by Place.
	Host topo.ASN
	// Hosts lists one AS per uplink (Hosts[0] == Host).
	Hosts []topo.ASN
}

// EffectiveUplinks returns Uplinks, defaulting to 1 when unset.
func (s *Site) EffectiveUplinks() int {
	if s.Uplinks < 1 {
		return 1
	}
	return s.Uplinks
}

// Name returns the paper's X-APT site name.
func (s *Site) Name() string { return fmt.Sprintf("%c-%s", s.Letter, s.Code) }

// Letter is one of the 13 root services.
type Letter struct {
	Letter   byte
	Operator string
	Unicast  bool
	// PrimaryBackup marks H-Root-style routing: only the first site is
	// announced; the second takes over when the first withdraws.
	PrimaryBackup bool
	// NormalQPS is the letter's baseline query load (Table 3 baselines:
	// 30-60 kq/s per letter).
	NormalQPS float64
	// ReportsRSSAC marks the five letters that published RSSAC-002 data
	// at event time (A, H, J, K, L; §2.4.2).
	ReportsRSSAC bool
	Sites        []*Site
}

// SiteByCode returns the site with the given IATA code.
func (l *Letter) SiteByCode(code string) (*Site, bool) {
	for _, s := range l.Sites {
		if s.Code == code {
			return s, true
		}
	}
	return nil, false
}

// Deployment is the full 13-letter root service.
type Deployment struct {
	Letters []*Letter
}

// Letter returns the service for a letter byte.
func (d *Deployment) Letter(b byte) (*Letter, bool) {
	for _, l := range d.Letters {
		if l.Letter == b {
			return l, true
		}
	}
	return nil, false
}

// TotalSites returns the number of sites across all letters.
func (d *Deployment) TotalSites() int {
	n := 0
	for _, l := range d.Letters {
		n += len(l.Sites)
	}
	return n
}

// siteSpec is the compact form used by the builder tables below.
type siteSpec struct {
	code         string
	capacity     float64 // queries/s
	servers      int
	local        bool
	policy       Policy
	mode         ServerMode
	hot          int
	uplinks      int
	flappy       int
	shallow      bool
	slow         bool
	majorTransit bool
}

// Capacity classes. The paper notes root services are overprovisioned by
// 10-100x of their ~40 kq/s normal load, yet the 5 Mq/s per-letter attack
// exceeded whole letters' aggregate capacity (§2.2, §3.1) — K-Root's
// largest site was crushed to 1-2 s RTTs. These 2015-scale capacities give
// a 30-site letter roughly 1.8 Mq/s aggregate (~45x normal), far below the
// flood.
const (
	capLarge  = 450_000
	capMedium = 160_000
	capSmall  = 60_000
	capTiny   = 20_000
)

// eRootSites reproduces the 32-site E-Root list of Figure 6a, ordered by
// median catchment size. E-Root's sites predominantly withdrew under stress
// (five sites "shut down" after the second event).
func eRootSites() []siteSpec {
	big := []string{"AMS", "FRA", "LHR", "ARC"}
	mid := []string{"CDG", "VIE", "QPG", "ORD", "KBP", "ZRH", "IAD", "PAO", "WAW", "ATL", "BER", "SYD", "SEA", "NLV", "MIA", "NRT", "TRN"}
	small := []string{"AKL", "MAN", "BUR", "LGA", "PER", "SNA", "LBA", "SIN", "DXB", "KGL", "LAD"}
	var out []siteSpec
	for _, c := range big {
		out = append(out, siteSpec{code: c, capacity: capMedium, servers: 4, policy: Withdraw, mode: ServersShared})
	}
	for _, c := range mid {
		out = append(out, siteSpec{code: c, capacity: capSmall, servers: 2, policy: Withdraw, mode: ServersShared})
	}
	for _, c := range small {
		out = append(out, siteSpec{code: c, capacity: capTiny, servers: 1, local: true, policy: Withdraw, mode: ServersShared})
	}
	return out
}

// kRootSites reproduces the 30-site K-Root list of Figure 6b. K-Root's
// well-connected sites acted as degraded absorbers: K-AMS stayed up at
// 1-2 s RTT, K-FRA isolated probes onto one server per event, and K-NRT's
// three servers all degraded with S2 hottest (§3.4.2, §3.5).
func kRootSites() []siteSpec {
	out := []siteSpec{
		// K-AMS sits on the Amsterdam exchange with several transit
		// sessions: when other K sites withdraw, routing overwhelmingly
		// prefers it (Figure 10: 70-80% of K-LHR/K-FRA movers land on
		// K-AMS).
		{code: "AMS", capacity: capLarge, servers: 4, policy: Absorb, mode: ServersShared, uplinks: 3},
		// K-LHR keeps one absorbing session while the other flaps away:
		// most of its catchment drains to K-AMS, but the VPs behind the
		// surviving session stay "stuck" to the overloaded site with only
		// occasional replies (§3.4.2 group 1).
		{code: "LHR", capacity: capMedium, servers: 3, policy: Absorb, mode: ServersShared, uplinks: 2, flappy: 1},
		{code: "FRA", capacity: capMedium, servers: 3, policy: Absorb, mode: ServersIsolate, uplinks: 2, flappy: 1, slow: true},
		{code: "MIA", capacity: capMedium, servers: 3, policy: Absorb, mode: ServersShared},
		{code: "VIE", capacity: capMedium, servers: 2, policy: Absorb, mode: ServersShared},
		{code: "LED", capacity: capMedium, servers: 2, policy: Absorb, mode: ServersShared},
		{code: "NRT", capacity: capSmall, servers: 3, policy: Absorb, mode: ServersShared, hot: 2, majorTransit: true},
	}
	mid := []string{"MIL", "ZRH", "WAW", "BNE", "PRG", "GVA"}
	for _, c := range mid {
		out = append(out, siteSpec{code: c, capacity: capSmall, servers: 2, policy: Absorb, mode: ServersShared})
	}
	small := []string{"ATH", "MKC", "RIX", "THR", "BUD", "KAE", "BEG", "HEL", "PLX", "OVB", "POZ", "ABO", "AVN", "BCN", "REY", "DOH", "RNO"}
	for _, c := range small {
		out = append(out, siteSpec{code: c, capacity: capTiny, servers: 1, local: true, policy: Absorb, mode: ServersShared})
	}
	return out
}

// genericSites fabricates a site list for letters whose exact site sets are
// not published in the paper, cycling through interconnection-dense cities.
func genericSites(n int, nGlobal int, policy Policy, rng *rand.Rand) []siteSpec {
	cities := geo.Cities()
	// Shuffle deterministically so different letters get different mixes.
	rng.Shuffle(len(cities), func(i, j int) { cities[i], cities[j] = cities[j], cities[i] })
	out := make([]siteSpec, 0, n)
	for i := 0; i < n; i++ {
		city := cities[i%len(cities)]
		spec := siteSpec{code: city.Code, policy: policy, mode: ServersShared}
		switch {
		case i < nGlobal/3+1:
			spec.capacity, spec.servers = capMedium, 3
		case i < nGlobal:
			spec.capacity, spec.servers = capSmall, 2
		default:
			spec.capacity, spec.servers, spec.local = capTiny, 1, true
		}
		out = append(out, spec)
	}
	return out
}

// RootDeployment builds the 13-letter deployment with the architecture of
// Table 2 (site counts follow the "observed" column; E and K use the exact
// site lists of Figure 6). The seed controls only the fabricated site lists
// of letters without published site sets. A site list naming a city
// outside the geo table yields an error wrapping geo.ErrUnknownCity.
func RootDeployment(seed int64) (*Deployment, error) {
	rng := rand.New(rand.NewSource(seed))
	var buildErr error
	build := func(letter byte, operator string, normal float64, rssac bool, specs []siteSpec) *Letter {
		l := &Letter{Letter: letter, Operator: operator, NormalQPS: normal, ReportsRSSAC: rssac}
		seen := map[string]int{}
		for _, sp := range specs {
			// Letters can have at most one site per city code in our
			// naming scheme; disambiguation would break CHAOS parsing.
			if seen[sp.code] > 0 {
				continue
			}
			seen[sp.code]++
			city, err := geo.LookupErr(sp.code)
			if err != nil {
				if buildErr == nil {
					buildErr = fmt.Errorf("anycast: letter %c site list: %w", letter, err)
				}
				continue
			}
			l.Sites = append(l.Sites, &Site{
				Letter: letter, Code: sp.code, City: city, Local: sp.local,
				CapacityQPS: sp.capacity, NumServers: sp.servers,
				Policy: sp.policy, ServerMode: sp.mode, HotServer: sp.hot,
				Uplinks: sp.uplinks, FlappyUplinks: sp.flappy,
				ShallowBuffers: sp.shallow, SlowRestore: sp.slow,
				MajorTransit: sp.majorTransit,
			})
		}
		return l
	}

	// A-Root: Verisign's DDoS-hardened deployment. The paper reports A
	// "continuing to serve all regular queries throughout" and measuring
	// essentially the whole 5 Mq/s flood (its RSSAC numbers anchor the
	// upper-bound estimate), so its five sites carry far more capacity
	// than anyone else's.
	const capVerisign = 1_150_000
	aSites := []siteSpec{
		{code: "IAD", capacity: capVerisign, servers: 6, policy: Absorb, mode: ServersShared, uplinks: 2},
		{code: "LGA", capacity: capVerisign, servers: 6, policy: Absorb, mode: ServersShared, uplinks: 2},
		{code: "FRA", capacity: capVerisign, servers: 4, policy: Absorb, mode: ServersShared},
		{code: "HKG", capacity: capVerisign, servers: 4, policy: Absorb, mode: ServersShared},
		{code: "LAX", capacity: capVerisign, servers: 4, policy: Absorb, mode: ServersShared},
	}
	// B-Root: unicast, one site on the US West coast. Its ingress drops
	// excess traffic at a shallow queue, so the probes that do succeed
	// keep near-normal RTTs (§3.2.1: B suffered the most loss but showed
	// little RTT change).
	bSites := []siteSpec{{code: "LAX", capacity: capSmall, servers: 3, policy: Absorb, mode: ServersShared, shallow: true}}
	cSites := []siteSpec{
		{code: "IAD", capacity: capMedium, servers: 2, policy: Absorb, mode: ServersShared},
		{code: "LGA", capacity: capMedium, servers: 2, policy: Absorb, mode: ServersShared},
		{code: "ORD", capacity: capSmall, servers: 2, policy: Absorb, mode: ServersShared},
		{code: "LAX", capacity: capSmall, servers: 2, policy: Absorb, mode: ServersShared},
		{code: "FRA", capacity: capMedium, servers: 2, policy: Absorb, mode: ServersShared},
		{code: "AMS", capacity: capMedium, servers: 2, policy: Absorb, mode: ServersShared},
		{code: "MAD", capacity: capSmall, servers: 2, policy: Absorb, mode: ServersShared},
		{code: "SIN", capacity: capSmall, servers: 2, policy: Absorb, mode: ServersShared},
	}
	// G-Root withdrew some sites under stress but never went fully dark:
	// Figure 4 shows its RTT jumping as catchments shifted to surviving
	// sites, so two sites absorb while the rest withdraw.
	gSites := []siteSpec{
		{code: "IAD", capacity: capSmall, servers: 2, policy: Absorb, mode: ServersShared},
		{code: "ORD", capacity: capSmall, servers: 2, policy: Withdraw, mode: ServersShared},
		{code: "DEN", capacity: capSmall, servers: 1, policy: Withdraw, mode: ServersShared},
		{code: "SEA", capacity: capSmall, servers: 1, policy: Withdraw, mode: ServersShared},
		{code: "FRA", capacity: capSmall, servers: 1, policy: Absorb, mode: ServersShared},
		{code: "NRT", capacity: capSmall, servers: 1, policy: Withdraw, mode: ServersShared},
	}
	hSites := []siteSpec{
		{code: "BWI", capacity: capSmall, servers: 2, policy: Withdraw, mode: ServersShared},
		{code: "SAN", capacity: capSmall, servers: 2, policy: Absorb, mode: ServersShared},
	}
	mSites := []siteSpec{
		{code: "NRT", capacity: capLarge, servers: 4, policy: Absorb, mode: ServersShared},
		{code: "CDG", capacity: capMedium, servers: 2, policy: Absorb, mode: ServersShared},
		{code: "PAO", capacity: capMedium, servers: 2, policy: Absorb, mode: ServersShared},
		{code: "ICN", capacity: capSmall, servers: 2, policy: Absorb, mode: ServersShared},
		{code: "MAD", capacity: capSmall, servers: 1, local: true, policy: Absorb, mode: ServersShared},
		{code: "SIN", capacity: capSmall, servers: 1, policy: Absorb, mode: ServersShared},
	}

	d := &Deployment{Letters: []*Letter{
		build('A', "Verisign", 40_000, true, aSites),
		build('B', "USC/ISI", 35_000, false, bSites),
		build('C', "Cogent", 40_000, false, cSites),
		// D-Root was not attacked but Figure 14 shows collateral damage at
		// D-FRA and D-SYD, so those sites are pinned into its list.
		build('D', "U. Maryland", 45_000, false, append([]siteSpec{
			{code: "FRA", capacity: capMedium, servers: 2, policy: Absorb, mode: ServersShared},
			{code: "SYD", capacity: capSmall, servers: 2, policy: Absorb, mode: ServersShared},
		}, genericSites(63, 16, Absorb, rng)...)),
		build('E', "NASA", 40_000, false, eRootSites()),
		build('F', "ISC", 55_000, false, genericSites(52, 5, Absorb, rng)),
		build('G', "U.S. DoD", 30_000, false, gSites),
		build('H', "ARL", 30_000, true, hSites),
		build('I', "Netnod", 45_000, false, genericSites(48, 48, Absorb, rng)),
		build('J', "Verisign", 50_000, true, genericSites(69, 66, Absorb, rng)),
		build('K', "RIPE", 40_000, true, kRootSites()),
		build('L', "ICANN", 60_000, true, genericSites(113, 113, Absorb, rng)),
		build('M', "WIDE", 40_000, false, mSites),
	}}
	if ub, ok := d.Letter('B'); ok {
		ub.Unicast = true
	}
	if h, ok := d.Letter('H'); ok {
		h.PrimaryBackup = true
	}
	if buildErr != nil {
		return nil, buildErr
	}
	return d, nil
}

// Place assigns every site a host AS located in (or nearest to) the site's
// city. Placement is deterministic for a given graph and seed: candidate
// host ASes are tier-2s in the same city, then same region, then any
// tier-2.
func (d *Deployment) Place(g *topo.Graph, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	// Index tier-2 ASes by city and region.
	byCity := map[string][]topo.ASN{}
	byRegion := map[geo.Region][]topo.ASN{}
	var all []topo.ASN
	for i := range g.ASes {
		a := &g.ASes[i]
		if a.Tier != topo.Tier2 {
			continue
		}
		byCity[a.City.Code] = append(byCity[a.City.Code], topo.ASN(i))
		byRegion[a.City.Region] = append(byRegion[a.City.Region], topo.ASN(i))
		all = append(all, topo.ASN(i))
	}
	if len(all) == 0 {
		return fmt.Errorf("anycast: topology has no tier-2 ASes to host sites")
	}
	// Large sites sit on top-layer transit (one hop from the tier-1
	// core); smaller sites are hosted by regional ISPs deeper in the
	// hierarchy, whose announcements carry longer AS paths and therefore
	// attract regional — not global — catchments.
	layerFilter := func(cands []topo.ASN, wantTop bool) []topo.ASN {
		var out []topo.ASN
		for _, a := range cands {
			if g.HasTier1Provider(a) == wantTop {
				out = append(out, a)
			}
		}
		return out
	}
	for _, l := range d.Letters {
		// One letter never announces two different sites from the same
		// host AS — a host's single best route would shadow one of them
		// and make forwarding disagree with the announced catchment.
		used := map[topo.ASN]bool{}
		for _, s := range l.Sites {
			wantTop := s.CapacityQPS >= 150_000 || s.MajorTransit
			// Candidate pools from most to least preferred; later pools
			// only matter when earlier ones are exhausted by the
			// one-site-per-host rule.
			pools := [][]topo.ASN{
				layerFilter(byCity[s.City.Code], wantTop),
				byCity[s.City.Code],
				layerFilter(byRegion[s.City.Region], wantTop),
				byRegion[s.City.Region],
				all,
			}
			n := s.EffectiveUplinks()
			s.Hosts = make([]topo.ASN, n)
			// Multi-uplink (major) sites buy transit from the
			// best-connected ISPs available; single-uplink sites pick
			// randomly among the pool.
			major := n >= 2
			for u := 0; u < n; u++ {
				var pick topo.ASN
				found := false
				for _, pool := range pools {
					if len(pool) == 0 {
						continue
					}
					ordered := pool
					if major {
						ordered = append([]topo.ASN(nil), pool...)
						sort.Slice(ordered, func(a, b int) bool {
							da, db := g.AS(ordered[a]).Degree(), g.AS(ordered[b]).Degree()
							if da != db {
								return da > db
							}
							return ordered[a] < ordered[b]
						})
					}
					if !found {
						// Default even if everything is used: stay in
						// the best non-empty pool.
						if major {
							pick = ordered[u%len(ordered)]
						} else {
							pick = ordered[(rng.Intn(len(ordered))+u)%len(ordered)]
						}
						found = true
					}
					base := 0
					if !major {
						base = rng.Intn(len(ordered))
					}
					fresh := false
					for off := 0; off < len(ordered); off++ {
						cand := ordered[(base+u+off)%len(ordered)]
						if !used[cand] {
							pick = cand
							fresh = true
							break
						}
					}
					if fresh {
						break
					}
				}
				used[pick] = true
				s.Hosts[u] = pick
			}
			s.Host = s.Hosts[0]
		}
	}
	return nil
}

// Validate checks deployment invariants: unique site codes per letter,
// positive capacities and server counts, and (after Place) assigned hosts.
func (d *Deployment) Validate(placed bool) error {
	letters := map[byte]bool{}
	for _, l := range d.Letters {
		if letters[l.Letter] {
			return fmt.Errorf("anycast: duplicate letter %c", l.Letter)
		}
		letters[l.Letter] = true
		if len(l.Sites) == 0 {
			return fmt.Errorf("anycast: letter %c has no sites", l.Letter)
		}
		codes := map[string]bool{}
		for _, s := range l.Sites {
			if codes[s.Code] {
				return fmt.Errorf("anycast: letter %c has duplicate site %s", l.Letter, s.Code)
			}
			codes[s.Code] = true
			if s.CapacityQPS <= 0 {
				return fmt.Errorf("anycast: site %s has capacity %v", s.Name(), s.CapacityQPS)
			}
			if s.NumServers < 1 {
				return fmt.Errorf("anycast: site %s has %d servers", s.Name(), s.NumServers)
			}
			if s.HotServer > s.NumServers {
				return fmt.Errorf("anycast: site %s hot server %d > %d servers", s.Name(), s.HotServer, s.NumServers)
			}
			if s.FlappyUplinks > s.EffectiveUplinks() {
				return fmt.Errorf("anycast: site %s has %d flappy of %d uplinks", s.Name(), s.FlappyUplinks, s.EffectiveUplinks())
			}
			if placed && s.Host == 0 && s.Letter != 'A' {
				// Host 0 is a valid ASN but letters are placed on
				// tier-2s (ASN >= Tier1 count), so 0 means unplaced.
				return fmt.Errorf("anycast: site %s not placed", s.Name())
			}
		}
	}
	return nil
}

// SortedLetters returns letter bytes present in the deployment, in order.
func (d *Deployment) SortedLetters() []byte {
	out := make([]byte, 0, len(d.Letters))
	for _, l := range d.Letters {
		out = append(out, l.Letter)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
