package anycast

import (
	"testing"

	"github.com/rootevent/anycastddos/internal/topo"
)

// mustDeployment builds the root deployment or fails the test.
func mustDeployment(t *testing.T, seed int64) *Deployment {
	t.Helper()
	d, err := RootDeployment(seed)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRootDeploymentShape(t *testing.T) {
	d := mustDeployment(t, 1)
	if err := d.Validate(false); err != nil {
		t.Fatal(err)
	}
	if len(d.Letters) != 13 {
		t.Fatalf("letters = %d", len(d.Letters))
	}
	// Spot-check Table 2's architecture.
	wantSites := map[byte]int{
		'A': 5, 'B': 1, 'C': 8, 'E': 32, 'G': 6, 'H': 2, 'K': 30,
	}
	for letter, want := range wantSites {
		l, ok := d.Letter(letter)
		if !ok {
			t.Fatalf("letter %c missing", letter)
		}
		if len(l.Sites) != want {
			t.Errorf("%c has %d sites, want %d", letter, len(l.Sites), want)
		}
	}
	// Many-site letters: close to the observed column (generic builder
	// may drop duplicate city codes).
	for _, tt := range []struct {
		letter byte
		min    int
	}{{'D', 55}, {'F', 45}, {'I', 40}, {'J', 55}, {'L', 70}} {
		l, _ := d.Letter(tt.letter)
		if len(l.Sites) < tt.min {
			t.Errorf("%c has %d sites, want >= %d", tt.letter, len(l.Sites), tt.min)
		}
	}
	b, _ := d.Letter('B')
	if !b.Unicast {
		t.Error("B must be unicast")
	}
	h, _ := d.Letter('H')
	if !h.PrimaryBackup {
		t.Error("H must be primary/backup")
	}
	// RSSAC reporters at event time: A, H, J, K, L.
	for _, l := range d.Letters {
		want := l.Letter == 'A' || l.Letter == 'H' || l.Letter == 'J' || l.Letter == 'K' || l.Letter == 'L'
		if l.ReportsRSSAC != want {
			t.Errorf("%c ReportsRSSAC = %v, want %v", l.Letter, l.ReportsRSSAC, want)
		}
	}
}

func TestPaperSiteListsPresent(t *testing.T) {
	d := mustDeployment(t, 1)
	k, _ := d.Letter('K')
	for _, code := range []string{"AMS", "LHR", "FRA", "NRT", "LED", "RNO", "DOH"} {
		if _, ok := k.SiteByCode(code); !ok {
			t.Errorf("K-%s missing", code)
		}
	}
	kfra, _ := k.SiteByCode("FRA")
	if kfra.ServerMode != ServersIsolate || kfra.NumServers != 3 {
		t.Errorf("K-FRA = mode %v servers %d, want isolate/3", kfra.ServerMode, kfra.NumServers)
	}
	knrt, _ := k.SiteByCode("NRT")
	if knrt.HotServer != 2 || knrt.NumServers != 3 {
		t.Errorf("K-NRT = hot %d servers %d, want 2/3", knrt.HotServer, knrt.NumServers)
	}
	e, _ := d.Letter('E')
	for _, code := range []string{"AMS", "CDG", "WAW", "SYD", "NLV", "LAD"} {
		s, ok := e.SiteByCode(code)
		if !ok {
			t.Errorf("E-%s missing", code)
			continue
		}
		if s.Policy != Withdraw {
			t.Errorf("E-%s policy = %v, want withdraw", code, s.Policy)
		}
	}
	// All K sites absorb.
	for _, s := range k.Sites {
		if s.Policy != Absorb {
			t.Errorf("%s policy = %v, want absorb", s.Name(), s.Policy)
		}
	}
	d2, _ := d.Letter('D')
	if _, ok := d2.SiteByCode("FRA"); !ok {
		// Figure 14 needs D-FRA; the generic list may or may not include
		// it by chance, so this is informational for seed 1.
		t.Log("D-FRA not in generic list for this seed")
	}
}

func TestDeterministicBySeed(t *testing.T) {
	d1 := mustDeployment(t, 7)
	d2 := mustDeployment(t, 7)
	for i, l := range d1.Letters {
		for j, s := range l.Sites {
			if d2.Letters[i].Sites[j].Code != s.Code {
				t.Fatalf("seed-7 deployments differ at %c site %d", l.Letter, j)
			}
		}
	}
}

func TestPlaceAssignsHostsInCityOrRegion(t *testing.T) {
	g, err := topo.Generate(topo.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	d := mustDeployment(t, 2)
	if err := d.Place(g, 3); err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(true); err != nil {
		t.Fatal(err)
	}
	sameCity, sameRegion, total := 0, 0, 0
	for _, l := range d.Letters {
		for _, s := range l.Sites {
			host := g.AS(s.Host)
			if host.Tier != topo.Tier2 {
				t.Errorf("site %s hosted by %v AS", s.Name(), host.Tier)
			}
			total++
			if host.City.Code == s.City.Code {
				sameCity++
			}
			if host.City.Region == s.City.Region {
				sameRegion++
			}
		}
	}
	if sameRegion*100 < total*80 {
		t.Errorf("only %d/%d sites hosted in-region", sameRegion, total)
	}
	if sameCity == 0 {
		t.Error("no site hosted in its own city; city indexing broken")
	}
}

func TestPlaceRequiresTier2s(t *testing.T) {
	g := &topo.Graph{ASes: make([]topo.AS, 3)} // all stubs by zero value? Tier zero value is Tier1
	d := mustDeployment(t, 1)
	// A graph with only tier-1 ASes has no tier-2 hosts.
	if err := d.Place(g, 1); err == nil {
		t.Error("want error when no tier-2 candidates exist")
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	d := &Deployment{Letters: []*Letter{{Letter: 'X'}}}
	if err := d.Validate(false); err == nil {
		t.Error("letter without sites must fail")
	}
	site := func() *Site {
		return &Site{Letter: 'X', Code: "AMS", CapacityQPS: 10, NumServers: 1}
	}
	d = &Deployment{Letters: []*Letter{{Letter: 'X', Sites: []*Site{site(), site()}}}}
	if err := d.Validate(false); err == nil {
		t.Error("duplicate site codes must fail")
	}
	s := site()
	s.CapacityQPS = 0
	d = &Deployment{Letters: []*Letter{{Letter: 'X', Sites: []*Site{s}}}}
	if err := d.Validate(false); err == nil {
		t.Error("zero capacity must fail")
	}
	s2 := site()
	s2.HotServer = 5
	d = &Deployment{Letters: []*Letter{{Letter: 'X', Sites: []*Site{s2}}}}
	if err := d.Validate(false); err == nil {
		t.Error("hot server beyond count must fail")
	}
	d = &Deployment{Letters: []*Letter{
		{Letter: 'X', Sites: []*Site{site()}},
		{Letter: 'X', Sites: []*Site{site()}},
	}}
	if err := d.Validate(false); err == nil {
		t.Error("duplicate letters must fail")
	}
}

func TestSortedLettersAndNames(t *testing.T) {
	d := mustDeployment(t, 1)
	ls := d.SortedLetters()
	if len(ls) != 13 || ls[0] != 'A' || ls[12] != 'M' {
		t.Errorf("SortedLetters = %s", string(ls))
	}
	k, _ := d.Letter('K')
	s, _ := k.SiteByCode("AMS")
	if s.Name() != "K-AMS" {
		t.Errorf("Name = %q", s.Name())
	}
	if _, ok := k.SiteByCode("XXX"); ok {
		t.Error("SiteByCode(XXX) should fail")
	}
	if _, ok := d.Letter('Z'); ok {
		t.Error("Letter(Z) should fail")
	}
}

func TestPolicyAndModeStrings(t *testing.T) {
	if Absorb.String() != "absorb" || Withdraw.String() != "withdraw" || Policy(9).String() != "Policy(9)" {
		t.Error("Policy strings")
	}
	if ServersShared.String() != "shared" || ServersIsolate.String() != "isolate" || ServerMode(9).String() != "ServerMode(9)" {
		t.Error("ServerMode strings")
	}
}
