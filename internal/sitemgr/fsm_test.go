package sitemgr

import (
	"encoding/json"
	"fmt"
	"testing"
)

// sigOK / sigProbeBad / sigServerBad / sigBothBad / sigDead are the five
// evidence shapes the machine distinguishes.
var (
	sigOK        = Signals{Alive: true, ProbeOK: true}
	sigProbeBad  = Signals{Alive: true, ProbeOK: false}
	sigServerBad = Signals{Alive: true, ProbeOK: true, LossRate: 0.9}
	sigBothBad   = Signals{Alive: true, ProbeOK: false, RRLRate: 0.9}
	sigDead      = Signals{}
)

// trace runs a fresh FSM over a signal script and records every tick's
// (state, action, penalty) as one JSON line — the byte-stable decision
// trace the determinism test compares.
func trace(cfg Config, script []Signals) string {
	f := NewFSM(cfg)
	out := ""
	for i, sig := range script {
		act := f.Tick(sig)
		out += fmt.Sprintf(`{"tick":%d,"state":%q,"action":%q,"penalty":%.6f}`+"\n",
			i, f.State(), act, f.Penalty())
	}
	return out
}

func TestFSMWithdrawRequiresCorroboration(t *testing.T) {
	// Probe evidence alone — the HealthProbeLoss failure mode — must
	// never withdraw: the site parks in Stressed.
	f := NewFSM(Config{})
	for i := 0; i < 100; i++ {
		if act := f.Tick(sigProbeBad); act != ActNone {
			t.Fatalf("tick %d: probe-only evidence produced %v", i, act)
		}
	}
	if f.State() != Stressed {
		t.Fatalf("probe-only evidence: state %v, want stressed", f.State())
	}
	// Server evidence alone holds too (a loss fault on the data path
	// with probes still answering).
	f = NewFSM(Config{})
	for i := 0; i < 100; i++ {
		if act := f.Tick(sigServerBad); act != ActNone {
			t.Fatalf("tick %d: server-only evidence produced %v", i, act)
		}
	}
	if f.State() != Stressed {
		t.Fatalf("server-only evidence: state %v, want stressed", f.State())
	}
	// Corroborated evidence withdraws after StressTicks + FailTicks.
	f = NewFSM(Config{StressTicks: 2, FailTicks: 3})
	var got Action
	ticks := 0
	for got != ActWithdraw && ticks < 20 {
		got = f.Tick(sigBothBad)
		ticks++
	}
	if got != ActWithdraw || ticks != 5 {
		t.Fatalf("corroborated evidence: %v after %d ticks, want withdraw after 5", got, ticks)
	}
	if f.State() != Draining {
		t.Fatalf("state after withdraw: %v", f.State())
	}
}

func TestFSMFullLifecycle(t *testing.T) {
	cfg := Config{
		StressTicks: 1, FailTicks: 2, RecoverTicks: 2, DrainTicks: 2,
		ReprobeTicks: 2, ProbationTicks: 2, PenaltyHalfLife: 2,
	}
	f := NewFSM(cfg)
	step := func(sig Signals, wantState State, wantAct Action) {
		t.Helper()
		act := f.Tick(sig)
		if f.State() != wantState || act != wantAct {
			t.Fatalf("got (%v, %v), want (%v, %v)", f.State(), act, wantState, wantAct)
		}
	}
	step(sigBothBad, Stressed, ActNone) // StressTicks=1
	step(sigBothBad, Stressed, ActNone) // failStreak 1
	step(sigBothBad, Draining, ActWithdraw)
	step(sigOK, Draining, ActNone)  // drainTicks 1
	step(sigOK, Withdrawn, ActNone) // drain complete
	// Penalty (1000 at withdraw, half-life 2) decays below the 1500
	// suppression threshold immediately; two clean probe ticks re-announce.
	step(sigOK, Withdrawn, ActNone) // probeStreak 1
	step(sigOK, Probation, ActAnnounce)
	step(sigOK, Probation, ActNone)
	step(sigOK, Healthy, ActNone)
}

func TestFSMProbationFlapStacksPenalty(t *testing.T) {
	cfg := Config{
		StressTicks: 1, FailTicks: 1, DrainTicks: 1,
		ReprobeTicks: 1, PenaltyHalfLife: 100, // slow decay: flaps stack
	}
	f := NewFSM(cfg)
	f.Tick(sigBothBad)                     // Healthy -> Stressed
	if f.Tick(sigBothBad) != ActWithdraw { // Stressed -> Draining
		t.Fatal("first withdraw missing")
	}
	p1 := f.Penalty()
	f.Tick(sigOK) // Draining -> Withdrawn
	if f.Tick(sigOK) != ActAnnounce {
		t.Fatal("re-announce missing")
	}
	// Flap in probation: immediate withdraw, penalty stacks above the
	// 1500 suppression threshold.
	if f.Tick(sigBothBad) != ActWithdraw {
		t.Fatal("probation flap did not withdraw")
	}
	if f.Penalty() <= p1 {
		t.Fatalf("penalty did not stack: %v then %v", p1, f.Penalty())
	}
	f.Tick(sigOK) // -> Withdrawn
	// Suppressed: clean probes alone must not re-announce while the
	// stacked penalty exceeds the threshold.
	for i := 0; i < 20; i++ {
		if act := f.Tick(sigOK); act == ActAnnounce {
			if f.Penalty() > 1500 {
				t.Fatalf("re-announced at tick %d with penalty %v > threshold", i, f.Penalty())
			}
			return
		}
	}
	// With half-life 100, 20 ticks decay ~2041 -> ~1777: still suppressed.
	if f.State() != Withdrawn {
		t.Fatalf("state %v, want withdrawn under suppression", f.State())
	}
}

func TestFSMCrashWithdrawsImmediately(t *testing.T) {
	f := NewFSM(Config{})
	if act := f.Tick(sigDead); act != ActWithdraw {
		t.Fatalf("dead site: %v, want immediate withdraw", act)
	}
	if f.State() != Draining {
		t.Fatalf("state %v", f.State())
	}
}

func TestFSMAbsorbRollsBack(t *testing.T) {
	f := NewFSM(Config{StressTicks: 1, FailTicks: 1})
	f.Tick(sigBothBad)
	if f.Tick(sigBothBad) != ActWithdraw {
		t.Fatal("no withdraw")
	}
	f.Absorb()
	if f.State() != Stressed {
		t.Fatalf("state after absorb: %v", f.State())
	}
	if f.Penalty() != 0 {
		t.Fatalf("penalty after absorb: %v, want the flap charge rolled back", f.Penalty())
	}
}

func TestFSMDeterministicTrace(t *testing.T) {
	cfg := Config{
		StressTicks: 1, FailTicks: 2, RecoverTicks: 2, DrainTicks: 1,
		ReprobeTicks: 2, ProbationTicks: 3, PenaltyHalfLife: 5,
	}
	// A script that walks every state: stress, withdraw, recover,
	// flap, suppress, recover again.
	var script []Signals
	add := func(sig Signals, n int) {
		for i := 0; i < n; i++ {
			script = append(script, sig)
		}
	}
	add(sigOK, 3)
	add(sigBothBad, 5)
	add(sigOK, 10)
	add(sigBothBad, 4)
	add(sigProbeBad, 5)
	add(sigOK, 40)
	add(sigDead, 2)
	add(sigOK, 30)

	first := trace(cfg, script)
	for i := 0; i < 3; i++ {
		if again := trace(cfg, script); again != first {
			t.Fatalf("rerun %d: trace diverged\n--- first ---\n%s--- rerun ---\n%s", i, first, again)
		}
	}
	// The trace is valid JSON lines mentioning every state.
	seen := map[string]bool{}
	for _, line := range splitLines(first) {
		var rec struct {
			State string `json:"state"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		seen[rec.State] = true
	}
	for s := State(0); s < numStates; s++ {
		if !seen[s.String()] {
			t.Errorf("trace never visited %v", s)
		}
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func TestStateAndActionStrings(t *testing.T) {
	if Healthy.String() != "healthy" || Probation.String() != "probation" {
		t.Fatal("state names")
	}
	if State(200).String() != "State(200)" || Action(9).String() != "Action(9)" {
		t.Fatal("fallback names")
	}
	if !Probation.Announced() || Withdrawn.Announced() || Draining.Announced() {
		t.Fatal("Announced classification")
	}
	if stateByName("draining") != Draining || stateByName("bogus") != Withdrawn {
		t.Fatal("stateByName")
	}
}
