package sitemgr

import (
	"context"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/rootevent/anycastddos/internal/dnswire"
	"github.com/rootevent/anycastddos/internal/rrl"
	"github.com/rootevent/anycastddos/internal/topo"
)

// fastFSM is tuned so e2e tests converge in a handful of ticks.
func fastFSM() Config {
	return Config{
		StressTicks: 1, FailTicks: 2, RecoverTicks: 2, DrainTicks: 1,
		ReprobeTicks: 2, ProbationTicks: 2, PenaltyHalfLife: 2,
	}
}

// testManagerConfig is a three-site deployment with RRL tight enough that
// a loopback flood both starves the health probes (flood and probes share
// the 127.0.0.1 RRL bucket) and spikes the server's RRL-drop counter —
// one real flood fires both signal families at once.
func testManagerConfig(t *testing.T) ManagerConfig {
	t.Helper()
	return ManagerConfig{
		Letter:       'K',
		Sites:        []string{"AMS", "LHR", "NRT"},
		Seed:         7,
		FSM:          fastFSM(),
		ProbeTimeout: 300 * time.Millisecond,
		RRL:          &rrl.Config{ResponsesPerSecond: 20, Burst: 20, SlipRatio: 0, PrefixBits: 32},
	}
}

// sampleASNs picks n spread-out ASNs to publish in the state file.
func sampleASNs(n int) []topo.ASN {
	out := make([]topo.ASN, n)
	for i := range out {
		out[i] = topo.ASN(10 + 7*i)
	}
	return out
}

// flood sends CHAOS queries to addr as fast as it can until stopped.
func flood(t *testing.T, addr string) (stop func()) {
	t.Helper()
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	q := dnswire.NewQuery(99, "hostname.bind", dnswire.TypeTXT, dnswire.ClassCHAOS)
	pkt, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			conn.Write(pkt)
		}
	}()
	return func() {
		close(done)
		wg.Wait()
		conn.Close()
	}
}

// tickUntil steps the manager until pred holds or maxTicks pass.
func tickUntil(t *testing.T, m *Manager, maxTicks int, pred func() bool) bool {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < maxTicks; i++ {
		if err := m.TickOnce(ctx); err != nil {
			t.Fatal(err)
		}
		if pred() {
			return true
		}
		time.Sleep(20 * time.Millisecond)
	}
	return pred()
}

func siteState(m *Manager, i int) string { return m.Status().Sites[i].State }

func TestManagerFloodFailover(t *testing.T) {
	cfg := testManagerConfig(t)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Settle healthy first.
	if !tickUntil(t, m, 10, func() bool {
		st := m.Status()
		return st.Sites[0].State == "healthy" && st.Sites[1].State == "healthy" && st.Sites[2].State == "healthy"
	}) {
		t.Fatalf("deployment never settled healthy: %+v", m.Status().Sites)
	}
	before := m.Status()
	if before.Announced != 3 {
		t.Fatalf("announced = %d", before.Announced)
	}

	// Flood site 0: RRL starves both the flood and the health probes.
	stop := flood(t, m.SiteAddr(0))
	if !tickUntil(t, m, 60, func() bool { return !m.Status().Sites[0].Announced }) {
		stop()
		t.Fatalf("flooded site never withdrawn: %+v", m.Status().Sites[0])
	}

	// The catchment waterbeds onto the survivors: every AS site 0
	// served now routes to 1 or 2.
	after := m.Status()
	if after.Sites[0].Catchment != 0 {
		t.Fatalf("withdrawn site still has catchment %d", after.Sites[0].Catchment)
	}
	if got := after.Sites[1].Catchment + after.Sites[2].Catchment; got < before.Sites[1].Catchment+before.Sites[2].Catchment {
		t.Fatalf("survivor catchment shrank: %+v", after.Sites)
	}

	// TCP to the withdrawn site is drained: a fresh connection is
	// refused or immediately closed.
	if conn, err := net.Dial("tcp", m.SiteAddr(0)); err == nil {
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, rerr := conn.Read(make([]byte, 1)); rerr == nil {
			t.Fatal("withdrawn site still serves TCP")
		}
		conn.Close()
	}

	// Flood ends; the site re-proves health and returns to rotation.
	stop()
	if !tickUntil(t, m, 120, func() bool {
		s := m.Status().Sites[0]
		return s.Announced && (s.State == "healthy" || s.State == "probation")
	}) {
		t.Fatalf("site never re-announced after flood: %+v", m.Status().Sites[0])
	}
}

func TestManagerMinAnnouncedFloor(t *testing.T) {
	cfg := testManagerConfig(t)
	cfg.Sites = []string{"AMS", "LHR"}
	cfg.MinAnnounced = 2
	dir := t.TempDir()
	cfg.JournalPath = filepath.Join(dir, "journal.bin")
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	stop := flood(t, m.SiteAddr(0))
	defer stop()

	// The floor holds: the flooded site is never withdrawn, it absorbs.
	sawAbsorb := false
	tickUntil(t, m, 30, func() bool {
		recs, err := ReadJournal(cfg.JournalPath)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if r.Type == RecAbsorb {
				sawAbsorb = true
			}
			if r.Type == RecTransition && r.Action == "withdraw" {
				t.Fatalf("floor violated: %+v", r)
			}
		}
		return sawAbsorb
	})
	if !sawAbsorb {
		t.Fatal("no absorb decision journaled under flood at the floor")
	}
	if got := m.Status().Announced; got != 2 {
		t.Fatalf("announced = %d, want 2 (floor)", got)
	}
}

func TestManagerJournalResume(t *testing.T) {
	cfg := testManagerConfig(t)
	dir := t.TempDir()
	cfg.JournalPath = filepath.Join(dir, "journal.bin")
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	stop := flood(t, m.SiteAddr(0))
	if !tickUntil(t, m, 60, func() bool { return siteState(m, 0) == "withdrawn" }) {
		stop()
		t.Fatalf("site never withdrawn: %+v", m.Status().Sites[0])
	}
	stop()
	penalty := m.Status().Sites[0].Penalty
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// A new manager on the same journal resumes withdrawn-with-penalty,
	// not fresh: damping history survives the crash.
	m2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	st := m2.Status()
	if st.Sites[0].State != "withdrawn" || st.Sites[0].Announced {
		t.Fatalf("resume lost state: %+v", st.Sites[0])
	}
	if st.Sites[0].Penalty <= 0 || st.Sites[0].Penalty > penalty+1 {
		t.Fatalf("resume penalty %v, journaled %v", st.Sites[0].Penalty, penalty)
	}
	if st.Announced != 2 {
		t.Fatalf("resume announced = %d", st.Announced)
	}
	// With the flood gone, the resumed manager heals the site.
	if !tickUntil(t, m2, 120, func() bool { return m2.Status().Sites[0].Announced }) {
		t.Fatalf("resumed manager never re-announced: %+v", m2.Status().Sites[0])
	}
}

func TestManagerJournalMismatchRejected(t *testing.T) {
	cfg := testManagerConfig(t)
	dir := t.TempDir()
	cfg.JournalPath = filepath.Join(dir, "journal.bin")
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.TickOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 99 // different deployment
	if _, err := New(cfg); err == nil {
		t.Fatal("mismatched journal accepted")
	}
}

func TestManagerKillRestart(t *testing.T) {
	cfg := testManagerConfig(t)
	cfg.RestartBackoffTicks = 1
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	tickUntil(t, m, 10, func() bool { return siteState(m, 0) == "healthy" })

	if err := m.KillSite(1); err != nil {
		t.Fatal(err)
	}
	// The crash withdraws the site immediately.
	if !tickUntil(t, m, 10, func() bool { return !m.Status().Sites[1].Announced }) {
		t.Fatalf("crashed site not withdrawn: %+v", m.Status().Sites[1])
	}
	// The restart budget brings it back on the same address, and health
	// probes re-announce it.
	addr := m.SiteAddr(1)
	if !tickUntil(t, m, 60, func() bool {
		s := m.Status().Sites[1]
		return s.Alive && s.Announced
	}) {
		t.Fatalf("site never restarted+re-announced: %+v", m.Status().Sites[1])
	}
	if m.SiteAddr(1) != addr {
		t.Fatalf("restart moved the address: %s -> %s", addr, m.SiteAddr(1))
	}
	if m.Status().Sites[1].Restarts != 1 {
		t.Fatalf("restarts = %d", m.Status().Sites[1].Restarts)
	}
}

func TestManagerStateFilePublished(t *testing.T) {
	cfg := testManagerConfig(t)
	dir := t.TempDir()
	cfg.StatePath = filepath.Join(dir, "state.json")
	cfg.SampleASNs = sampleASNs(5)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.TickOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(cfg.StatePath)
	if err != nil {
		t.Fatal(err)
	}
	var st StateFile
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("state file not valid JSON: %v", err)
	}
	if st.Letter != "K" || st.Tick != 1 || len(st.Sites) != 3 || len(st.Samples) != 5 {
		t.Fatalf("state file: %+v", st)
	}
	for _, s := range st.Samples {
		if s.Site >= 0 && s.Addr == "" {
			t.Fatalf("sample with a site but no address: %+v", s)
		}
	}
}
