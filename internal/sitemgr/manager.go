package sitemgr

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"github.com/rootevent/anycastddos/internal/atomicio"
	"github.com/rootevent/anycastddos/internal/bgpsim"
	"github.com/rootevent/anycastddos/internal/dnsserver"
	"github.com/rootevent/anycastddos/internal/faults"
	"github.com/rootevent/anycastddos/internal/rrl"
	"github.com/rootevent/anycastddos/internal/topo"
)

// ManagerConfig describes one letter's managed deployment.
type ManagerConfig struct {
	// Letter is the root letter served (required).
	Letter byte
	// Sites are the IATA names of the sites to run, one server each
	// (required, at least one).
	Sites []string
	// MinAnnounced is the safety floor: the manager never lets the
	// announced-site count drop below it — a withdraw that would is
	// vetoed and the site absorbs instead (default 1).
	MinAnnounced int
	// Seed drives every stochastic element (server loss coins, probe
	// backoff jitter) so runs replay.
	Seed int64

	// JournalPath enables the crash-safe decision journal; empty
	// disables it. A manager restarted onto an existing journal resumes
	// each site's state and damping penalty.
	JournalPath string
	// StatePath, when set, is atomically rewritten after every tick with
	// the manager's observable state (StateFile JSON) for soaks and
	// dashboards.
	StatePath string

	// FSM tunes the per-site health machines.
	FSM Config

	// Graph is the routing topology; nil generates the default graph
	// from Seed. Hosts assigns each site's origin AS; nil uses
	// ASN 0..len(Sites)-1 (the tier-1s of a generated graph).
	Graph *topo.Graph
	Hosts []topo.ASN
	// SampleASNs are published in the state file with their currently
	// serving site — the catchment-shift observable the failover soak
	// checks against real probes.
	SampleASNs []topo.ASN

	// Faults optionally injects control-plane faults: HealthProbeLoss
	// events swallow probe attempts (minute = tick).
	Faults *faults.Compiled

	// ProbeTimeout bounds each health-probe attempt (default 500ms);
	// ProbeRetries adds attempts on timeout (default 1, negative for
	// none).
	ProbeTimeout time.Duration
	ProbeRetries int

	// RRL, Workers, LossProb, and Delay pass through to each site's
	// server.
	RRL      *rrl.Config
	Workers  int
	LossProb float64
	Delay    time.Duration

	// MaxRestarts bounds crashed-site restarts per site (default 3).
	MaxRestarts int
	// RestartBackoffTicks is the backoff before the first restart, in
	// ticks; it doubles per consumed restart, capped at 16 ticks
	// (default 2).
	RestartBackoffTicks int

	// Interval is Run's tick period (default 250ms). TickOnce ignores
	// it: tests and soaks step the manager manually.
	Interval time.Duration
}

func (c *ManagerConfig) setDefaults() error {
	if c.Letter == 0 {
		return errors.New("sitemgr: Letter required")
	}
	if len(c.Sites) == 0 {
		return errors.New("sitemgr: at least one site required")
	}
	if c.MinAnnounced <= 0 {
		c.MinAnnounced = 1
	}
	if c.MinAnnounced > len(c.Sites) {
		return fmt.Errorf("sitemgr: MinAnnounced %d exceeds site count %d", c.MinAnnounced, len(c.Sites))
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 500 * time.Millisecond
	}
	if c.ProbeRetries < 0 {
		c.ProbeRetries = 0
	} else if c.ProbeRetries == 0 {
		c.ProbeRetries = 1
	}
	if c.MaxRestarts <= 0 {
		c.MaxRestarts = 3
	}
	if c.RestartBackoffTicks <= 0 {
		c.RestartBackoffTicks = 2
	}
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	return nil
}

// managedSite is one site's runtime: its server (nil while crashed), its
// health machine, and its restart bookkeeping.
type managedSite struct {
	name            string
	fsm             *FSM
	srv             *dnsserver.Server
	addr            string // pinned listen address, stable across restarts
	prev            dnsserver.Stats
	restarts        int
	nextRestartTick int // 0 = no restart scheduled
}

// Manager runs one letter's sites and their control loop. Methods are not
// safe for concurrent use — drive it from one goroutine (Run does).
type Manager struct {
	cfg      ManagerConfig
	fabric   *bgpsim.Fabric
	journal  *journal
	prober   *dnsserver.Prober
	sites    []*managedSite
	tick     int
	attempts uint64 // monotonic probe-attempt counter for fault coins
}

// New starts the deployment: N servers on loopback (UDP+TCP), the routing
// fabric with every site announced, and — when JournalPath is set — the
// decision journal, replaying any existing records so a restarted manager
// resumes with each site's state, announce position, and damping penalty
// intact.
func New(cfg ManagerConfig) (*Manager, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	g := cfg.Graph
	if g == nil {
		var err error
		if g, err = topo.Generate(topo.DefaultConfig(cfg.Seed)); err != nil {
			return nil, fmt.Errorf("sitemgr: generate topology: %w", err)
		}
	}
	hosts := cfg.Hosts
	if hosts == nil {
		for i := range cfg.Sites {
			hosts = append(hosts, topo.ASN(i))
		}
	}
	if len(hosts) != len(cfg.Sites) {
		return nil, fmt.Errorf("sitemgr: %d hosts for %d sites", len(hosts), len(cfg.Sites))
	}
	origins := make([]bgpsim.Origin, len(cfg.Sites))
	for i, h := range hosts {
		origins[i] = bgpsim.Origin{Site: i, Host: h}
	}

	m := &Manager{
		cfg:    cfg,
		fabric: bgpsim.NewFabric(g, origins),
		prober: dnsserver.NewProber(cfg.Seed),
	}
	m.prober.Timeout = cfg.ProbeTimeout
	m.prober.Retries = cfg.ProbeRetries

	fail := func(err error) (*Manager, error) {
		return nil, errors.Join(err, m.Close())
	}
	for i, name := range cfg.Sites {
		srv, err := m.startServer(name, i, "")
		if err != nil {
			return fail(fmt.Errorf("sitemgr: start site %s: %w", name, err))
		}
		m.sites = append(m.sites, &managedSite{
			name: name,
			fsm:  NewFSM(cfg.FSM),
			srv:  srv,
			addr: srv.Addr().String(),
		})
	}

	if cfg.JournalPath != "" {
		j, recs, err := openJournal(cfg.JournalPath)
		if err != nil {
			return fail(err)
		}
		m.journal = j
		replayed, lastTick, err := replayJournal(recs, cfg.Letter, len(cfg.Sites), cfg.Seed)
		if err != nil {
			return fail(err)
		}
		if len(recs) == 0 {
			if err := j.append(JournalRecord{
				Type: RecMeta, Letter: string(cfg.Letter), Sites: len(cfg.Sites), Seed: cfg.Seed,
			}); err != nil {
				return fail(err)
			}
		} else {
			m.tick = lastTick
			for i, js := range replayed {
				s := m.sites[i]
				s.fsm.Restore(js.state, js.penalty)
				s.restarts = js.restarts
				if !js.state.Announced() {
					m.fabric.Withdraw(i)
					s.srv.SetDraining(true)
				}
			}
		}
	}
	return m, nil
}

// startServer binds one site's server; addr pins the listen address
// (restart path) and "" takes an ephemeral port (first start).
func (m *Manager) startServer(name string, index int, addr string) (*dnsserver.Server, error) {
	srv, err := dnsserver.Start(dnsserver.Config{
		Letter:   m.cfg.Letter,
		Site:     name,
		Server:   1,
		Addr:     addr,
		RRL:      m.cfg.RRL,
		Workers:  m.cfg.Workers,
		LossProb: m.cfg.LossProb,
		Delay:    m.cfg.Delay,
		Seed:     m.cfg.Seed + int64(index),
	})
	if err != nil {
		return nil, err
	}
	if err := srv.StartTCP(); err != nil {
		return nil, errors.Join(err, srv.Close())
	}
	return srv, nil
}

// Tick returns the number of assessment rounds completed.
func (m *Manager) Tick() int { return m.tick }

// Fabric exposes the routing fabric (read-only use: tables, versions).
func (m *Manager) Fabric() *bgpsim.Fabric { return m.fabric }

// SiteAddr returns site i's pinned listen address.
func (m *Manager) SiteAddr(i int) string { return m.sites[i].addr }

// KillSite simulates a site crash: the server is closed and the manager
// notices on the next tick, withdrawing the route and scheduling a
// restart with capped exponential backoff.
func (m *Manager) KillSite(i int) error {
	s := m.sites[i]
	if s.srv == nil {
		return nil
	}
	err := s.srv.Close()
	s.srv = nil
	return err
}

// TickOnce runs one assessment round: per site, gather the two signal
// families (active probe, server counter delta), advance the health
// machine, journal the decision, and apply it to the fabric and the
// server's drain state. Crashed sites are restarted once their backoff
// expires, up to the restart budget. The state file (if configured) is
// rewritten last.
func (m *Manager) TickOnce(ctx context.Context) error {
	m.tick++
	for i, s := range m.sites {
		if s.srv == nil {
			if err := m.maybeRestart(ctx, i, s); err != nil {
				return err
			}
		}
		sig := m.assess(ctx, i, s)
		before := s.fsm.State()
		act := s.fsm.Tick(sig)
		if err := m.apply(i, s, before, act, sig); err != nil {
			return err
		}
	}
	return m.publishState()
}

// assess gathers one site's Signals for this tick.
func (m *Manager) assess(ctx context.Context, i int, s *managedSite) Signals {
	sig := Signals{Alive: s.srv != nil}
	if !sig.Alive {
		s.prev = dnsserver.Stats{}
		return sig
	}
	snap := s.srv.Snapshot()
	delta := snap.Sub(s.prev)
	s.prev = snap
	sig.LossRate = delta.LossRate()
	sig.RRLRate = delta.RRLRate()
	sig.Backlog = delta.Backlog()

	m.attempts++
	if m.cfg.Faults != nil && m.cfg.Faults.ProbeDropped(m.cfg.Letter, i, m.tick, m.attempts) {
		// The fault swallowed this attempt in flight: probe family bad,
		// server family untouched — exactly the uncorroborated evidence
		// the FSM refuses to withdraw on.
		return sig
	}
	res, err := m.prober.ProbeContext(ctx, s.srv.Addr(), m.cfg.Letter)
	sig.ProbeOK = err == nil && res.Matched
	return sig
}

// apply journals and executes one site's decision. The journal append
// happens before the routing change: a crash between the two replays the
// intent, never loses it.
func (m *Manager) apply(i int, s *managedSite, before State, act Action, sig Signals) error {
	after := s.fsm.State()
	if before == after && act == ActNone {
		return nil
	}
	reason := reasonFor(act, sig)
	if act == ActWithdraw && m.fabric.AnnouncedCount() <= m.cfg.MinAnnounced {
		// Floor veto: the deployment cannot afford another withdraw.
		// The site stays in service and absorbs (§5: degraded service
		// beats no service).
		s.fsm.Absorb()
		return m.journalAppend(JournalRecord{
			Type: RecAbsorb, Tick: m.tick, Site: i,
			From: before.String(), To: s.fsm.State().String(),
			Reason: "floor veto: " + reason, Penalty: s.fsm.Penalty(),
		})
	}
	if err := m.journalAppend(JournalRecord{
		Type: RecTransition, Tick: m.tick, Site: i,
		From: before.String(), To: after.String(),
		Action: act.String(), Reason: reason, Penalty: s.fsm.Penalty(),
	}); err != nil {
		return err
	}
	switch act {
	case ActWithdraw:
		m.fabric.Withdraw(i)
		if s.srv != nil {
			s.srv.SetDraining(true)
		}
	case ActAnnounce:
		m.fabric.Announce(i)
		if s.srv != nil {
			s.srv.SetDraining(false)
		}
	}
	return nil
}

// reasonFor summarizes the evidence behind a decision for the journal.
func reasonFor(act Action, sig Signals) string {
	if !sig.Alive {
		return "crash"
	}
	switch act {
	case ActWithdraw:
		return fmt.Sprintf("probe+server bad (loss %.2f rrl %.2f backlog %d)",
			sig.LossRate, sig.RRLRate, sig.Backlog)
	case ActAnnounce:
		return "probes recovered, penalty decayed"
	}
	if !sig.ProbeOK {
		return "probe failed"
	}
	return fmt.Sprintf("server signals (loss %.2f rrl %.2f backlog %d)",
		sig.LossRate, sig.RRLRate, sig.Backlog)
}

// maybeRestart restarts a crashed site once its backoff expires, within
// the restart budget. A failed rebind consumes a restart and doubles the
// backoff.
func (m *Manager) maybeRestart(ctx context.Context, i int, s *managedSite) error {
	if s.restarts >= m.cfg.MaxRestarts {
		return nil
	}
	if s.nextRestartTick == 0 {
		s.nextRestartTick = m.tick + m.restartBackoff(s.restarts)
		return nil
	}
	if m.tick < s.nextRestartTick {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	s.restarts++
	s.nextRestartTick = 0
	srv, err := m.startServer(s.name, i, s.addr)
	if err != nil {
		// The old port can linger briefly; retry after a doubled backoff.
		s.nextRestartTick = m.tick + m.restartBackoff(s.restarts)
		return m.journalAppend(JournalRecord{
			Type: RecRestart, Tick: m.tick, Site: i,
			Reason: "rebind failed: " + err.Error(), Restarts: s.restarts,
		})
	}
	s.srv = srv
	s.prev = dnsserver.Stats{}
	if !s.fsm.State().Announced() {
		srv.SetDraining(true)
	}
	return m.journalAppend(JournalRecord{
		Type: RecRestart, Tick: m.tick, Site: i,
		Reason: "restarted", Restarts: s.restarts,
	})
}

// restartBackoff is the capped exponential backoff (in ticks) before
// restart number `restarts`.
func (m *Manager) restartBackoff(restarts int) int {
	d := m.cfg.RestartBackoffTicks
	for i := 0; i < restarts && d < 16; i++ {
		d *= 2
	}
	if d > 16 {
		d = 16
	}
	return d
}

func (m *Manager) journalAppend(rec JournalRecord) error {
	if m.journal == nil {
		return nil
	}
	return m.journal.append(rec)
}

// SiteStatus is one site's externally visible position.
type SiteStatus struct {
	Index     int     `json:"index"`
	Name      string  `json:"name"`
	Addr      string  `json:"addr"`
	State     string  `json:"state"`
	Penalty   float64 `json:"penalty"`
	Announced bool    `json:"announced"`
	Alive     bool    `json:"alive"`
	Restarts  int     `json:"restarts"`
	Catchment int     `json:"catchment"`
}

// SampleRoute is one sampled AS's current routing: which site serves it
// and that site's socket address ("" when no site does).
type SampleRoute struct {
	ASN  int32  `json:"asn"`
	Site int    `json:"site"`
	Addr string `json:"addr"`
}

// StateFile is the JSON document published at StatePath after every tick.
type StateFile struct {
	Letter    string        `json:"letter"`
	Tick      int           `json:"tick"`
	Announced int           `json:"announced"`
	Version   uint64        `json:"version"`
	Sites     []SiteStatus  `json:"sites"`
	Samples   []SampleRoute `json:"samples,omitempty"`
}

// Status returns the current per-site view.
func (m *Manager) Status() StateFile {
	sizes := m.fabric.CatchmentSizes()
	st := StateFile{
		Letter:    string(m.cfg.Letter),
		Tick:      m.tick,
		Announced: m.fabric.AnnouncedCount(),
		Version:   m.fabric.Version(),
	}
	for i, s := range m.sites {
		st.Sites = append(st.Sites, SiteStatus{
			Index:     i,
			Name:      s.name,
			Addr:      s.addr,
			State:     s.fsm.State().String(),
			Penalty:   s.fsm.Penalty(),
			Announced: m.fabric.Announced(i),
			Alive:     s.srv != nil,
			Restarts:  s.restarts,
			Catchment: sizes[i],
		})
	}
	for _, a := range m.cfg.SampleASNs {
		sr := SampleRoute{ASN: int32(a), Site: m.fabric.SiteOf(a)}
		if sr.Site >= 0 && sr.Site < len(m.sites) {
			sr.Addr = m.sites[sr.Site].addr
		}
		st.Samples = append(st.Samples, sr)
	}
	return st
}

// publishState atomically rewrites the state file, if configured.
func (m *Manager) publishState() error {
	if m.cfg.StatePath == "" {
		return nil
	}
	data, err := json.MarshalIndent(m.Status(), "", "  ")
	if err != nil {
		return fmt.Errorf("sitemgr: encode state: %w", err)
	}
	if err := atomicio.WriteFileBytes(m.cfg.StatePath, append(data, '\n')); err != nil {
		return fmt.Errorf("sitemgr: publish state: %w", err)
	}
	return nil
}

// Run drives TickOnce on a real ticker until the context ends. The FSMs
// never see the clock — only the tick cadence is wall time.
func (m *Manager) Run(ctx context.Context) error {
	ticker := time.NewTicker(m.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
			if err := m.TickOnce(ctx); err != nil {
				return err
			}
		}
	}
}

// Close stops every server and closes the journal, joining their errors.
func (m *Manager) Close() error {
	var errs []error
	for _, s := range m.sites {
		if s.srv != nil {
			if err := s.srv.Close(); err != nil {
				errs = append(errs, err)
			}
			s.srv = nil
		}
	}
	if m.journal != nil {
		if err := m.journal.close(); err != nil {
			errs = append(errs, err)
		}
		m.journal = nil
	}
	return errors.Join(errs...)
}
