// Package sitemgr is the self-healing anycast site manager: it runs one
// letter's sites as real UDP/TCP DNS servers on loopback, assesses each
// site's health every tick from two independent signals — an active CHAOS
// probe and the server's own counter deltas — and drives announce/withdraw
// decisions through a simulated BGP fabric, with flap damping, graceful
// TCP drain on withdraw, a minimum-announced safety floor, bounded
// restart-with-backoff of crashed sites, and a crash-safe decision journal
// so a killed manager resumes with its damping history intact.
//
// The paper's event showed both halves of this loop going wrong at human
// timescales: operators withdrew overwhelmed sites hours into the attack,
// and some sites flapped as they were re-announced into still-hostile
// load. The manager encodes the mitigations as mechanism: corroboration
// (probe evidence alone never withdraws a site — the HealthProbeLoss
// fault exists precisely to punish managers that trust one signal),
// damping (each withdraw charges a decaying penalty that suppresses
// re-announce while high), and a floor (the last announced sites absorb
// rather than withdraw, because "no service anywhere" is strictly worse
// than "degraded service somewhere", §5).
package sitemgr

import "fmt"

// State is a site's position in the health state machine.
type State uint8

const (
	// Healthy: announced, serving, no adverse evidence.
	Healthy State = iota
	// Stressed: announced, but at least one health signal is bad. The
	// site keeps serving; the FSM is accumulating evidence.
	Stressed
	// Draining: the route is withdrawn and the TCP side is gracefully
	// shedding connections while residual catchment traffic dries up.
	Draining
	// Withdrawn: out of rotation, watched by probes only, waiting for
	// the flap-damping penalty to decay and health to return.
	Withdrawn
	// Probation: re-announced, but one bad tick sends it straight back
	// to Draining (and doubles down on the damping penalty).
	Probation

	numStates
)

// String returns the state's name.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Stressed:
		return "stressed"
	case Draining:
		return "draining"
	case Withdrawn:
		return "withdrawn"
	case Probation:
		return "probation"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Announced reports whether a site in this state holds an announced route.
func (s State) Announced() bool {
	return s == Healthy || s == Stressed || s == Probation
}

// Action is what the FSM asks the manager to do after a tick.
type Action uint8

const (
	// ActNone: no routing change this tick.
	ActNone Action = iota
	// ActWithdraw: withdraw the site's route and start the TCP drain.
	// The manager may veto it (minimum-announced floor) by calling
	// Absorb, pinning the site in Stressed instead.
	ActWithdraw
	// ActAnnounce: re-announce the site and stop the drain.
	ActAnnounce
)

// String returns the action's name.
func (a Action) String() string {
	switch a {
	case ActNone:
		return "none"
	case ActWithdraw:
		return "withdraw"
	case ActAnnounce:
		return "announce"
	default:
		return fmt.Sprintf("Action(%d)", uint8(a))
	}
}

// Signals is one assessment window's evidence for one site. The two
// independent signal families of the tentpole: ProbeOK comes from an
// active CHAOS probe over a real socket; Stats is the server's own
// counter delta for the window. Alive reports the serving process is up
// at all (a crashed site fails both families at once).
type Signals struct {
	Alive   bool
	ProbeOK bool
	// LossRate, RRLRate, and Backlog are the window's server-side
	// signals (dnsserver.Stats delta helpers).
	LossRate float64
	RRLRate  float64
	Backlog  uint64
}

// Config tunes the FSM. The zero value is usable: every field defaults to
// the values documented on it. All durations are in ticks — the FSM never
// reads a clock, so a test driving TickOnce and a manager driving a real
// ticker run the identical machine.
type Config struct {
	// StressTicks is how many consecutive ticks with any bad signal move
	// Healthy to Stressed (default 2).
	StressTicks int
	// FailTicks is how many consecutive corroborated-bad ticks (both
	// signal families bad) move Stressed to Draining (default 3).
	FailTicks int
	// RecoverTicks is how many consecutive clean ticks move Stressed
	// back to Healthy (default 3).
	RecoverTicks int
	// DrainTicks is how long a site sits in Draining before it is marked
	// Withdrawn (default 2).
	DrainTicks int
	// ReprobeTicks is how many consecutive good probe ticks a Withdrawn
	// site needs (on top of a decayed penalty) to enter Probation
	// (default 3).
	ReprobeTicks int
	// ProbationTicks is how many consecutive clean ticks graduate
	// Probation to Healthy (default 5).
	ProbationTicks int

	// MaxLossRate, MaxRRLRate, and MaxBacklog are the server-signal
	// thresholds; crossing any of them marks the server-side family bad
	// (defaults 0.25, 0.5, 4096).
	MaxLossRate float64
	MaxRRLRate  float64
	MaxBacklog  uint64

	// PenaltyPerFlap is charged on every withdraw (default 1000).
	PenaltyPerFlap float64
	// PenaltyHalfLife is the decay half-life of the penalty, in ticks
	// (default 30).
	PenaltyHalfLife int
	// SuppressThreshold blocks re-announce while the penalty exceeds it
	// (default 1500): one withdraw damps briefly, two in quick
	// succession damp for several half-lives.
	SuppressThreshold float64
}

func (c *Config) setDefaults() {
	if c.StressTicks <= 0 {
		c.StressTicks = 2
	}
	if c.FailTicks <= 0 {
		c.FailTicks = 3
	}
	if c.RecoverTicks <= 0 {
		c.RecoverTicks = 3
	}
	if c.DrainTicks <= 0 {
		c.DrainTicks = 2
	}
	if c.ReprobeTicks <= 0 {
		c.ReprobeTicks = 3
	}
	if c.ProbationTicks <= 0 {
		c.ProbationTicks = 5
	}
	if c.MaxLossRate <= 0 {
		c.MaxLossRate = 0.25
	}
	if c.MaxRRLRate <= 0 {
		c.MaxRRLRate = 0.5
	}
	if c.MaxBacklog == 0 {
		c.MaxBacklog = 4096
	}
	if c.PenaltyPerFlap <= 0 {
		c.PenaltyPerFlap = 1000
	}
	if c.PenaltyHalfLife <= 0 {
		c.PenaltyHalfLife = 30
	}
	if c.SuppressThreshold <= 0 {
		c.SuppressThreshold = 1500
	}
}

// FSM is one site's health state machine. It is pure data driven by Tick:
// no clocks, no randomness, no I/O — the same signal sequence always
// yields the same decision sequence, which is what makes the manager's
// journal replayable and its tests byte-identical across reruns.
type FSM struct {
	cfg     Config
	state   State
	penalty float64
	decay   float64 // per-tick penalty multiplier, 2^(-1/halfLife)

	badStreak   int // consecutive any-bad ticks (Healthy)
	failStreak  int // consecutive corroborated-bad ticks (Stressed)
	cleanStreak int // consecutive clean ticks (Stressed, Probation)
	drainTicks  int // ticks spent in Draining
	probeStreak int // consecutive good-probe ticks (Withdrawn)
}

// NewFSM returns a Healthy machine with the given tuning.
func NewFSM(cfg Config) *FSM {
	cfg.setDefaults()
	return &FSM{cfg: cfg, decay: halfLifeDecay(cfg.PenaltyHalfLife)}
}

// halfLifeDecay computes the per-tick multiplier that halves a value
// every halfLife ticks, without math.Pow: square-and-multiply on the
// exact binary expansion would be overkill, so use the identity
// 2^(-1/h) = exp(-ln2/h) via a short fixed iteration. Determinism only
// needs the same bits on every run, which any fixed computation gives.
func halfLifeDecay(halfLife int) float64 {
	// exp(x) by 16 Taylor terms at x = -ln2/halfLife; |x| <= ln2 so the
	// series converges fast and identically on every IEEE-754 platform.
	const ln2 = 0.6931471805599453
	x := -ln2 / float64(halfLife)
	term, sum := 1.0, 1.0
	for i := 1; i <= 16; i++ {
		term *= x / float64(i)
		sum += term
	}
	return sum
}

// State returns the current state.
func (f *FSM) State() State { return f.state }

// Penalty returns the current flap-damping penalty.
func (f *FSM) Penalty() float64 { return f.penalty }

// Restore rewinds the machine to a journaled position: state and penalty
// as recorded, streak counters cleared (the next ticks re-accumulate
// evidence, which only delays decisions, never corrupts them).
func (f *FSM) Restore(state State, penalty float64) {
	f.state = state
	f.penalty = penalty
	f.badStreak, f.failStreak, f.cleanStreak, f.drainTicks, f.probeStreak = 0, 0, 0, 0, 0
}

// Absorb is the manager's veto of an ActWithdraw: the minimum-announced
// floor held, so the site must stay in service and absorb the load. The
// machine returns to Stressed with its evidence counters cleared; the
// withdraw's penalty charge is rolled back since no flap happened.
func (f *FSM) Absorb() {
	f.state = Stressed
	f.penalty -= f.cfg.PenaltyPerFlap
	if f.penalty < 0 {
		f.penalty = 0
	}
	f.badStreak, f.failStreak, f.cleanStreak, f.drainTicks = 0, 0, 0, 0
}

// Tick advances the machine one assessment window and returns the action
// the manager should apply.
func (f *FSM) Tick(sig Signals) Action {
	f.penalty *= f.decay
	if f.penalty < 1e-6 {
		f.penalty = 0
	}

	probeBad := !sig.ProbeOK || !sig.Alive
	serverBad := !sig.Alive ||
		sig.LossRate > f.cfg.MaxLossRate ||
		sig.RRLRate > f.cfg.MaxRRLRate ||
		sig.Backlog > f.cfg.MaxBacklog
	anyBad := probeBad || serverBad
	bothBad := probeBad && serverBad

	switch f.state {
	case Healthy:
		if !sig.Alive {
			return f.withdraw()
		}
		if anyBad {
			f.badStreak++
			if f.badStreak >= f.cfg.StressTicks {
				f.toState(Stressed)
			}
		} else {
			f.badStreak = 0
		}

	case Stressed:
		if !sig.Alive {
			return f.withdraw()
		}
		switch {
		case bothBad:
			f.failStreak++
			f.cleanStreak = 0
			if f.failStreak >= f.cfg.FailTicks {
				return f.withdraw()
			}
		case anyBad:
			// One family bad, the other fine: hold. A probe-loss fault
			// parks a healthy site here forever rather than flapping it.
			f.failStreak = 0
			f.cleanStreak = 0
		default:
			f.failStreak = 0
			f.cleanStreak++
			if f.cleanStreak >= f.cfg.RecoverTicks {
				f.toState(Healthy)
			}
		}

	case Draining:
		f.drainTicks++
		if f.drainTicks >= f.cfg.DrainTicks {
			f.toState(Withdrawn)
		}

	case Withdrawn:
		// Probe-only evidence: a withdrawn site sees no real traffic, so
		// the server-side family is vacuous here.
		if sig.Alive && sig.ProbeOK {
			f.probeStreak++
		} else {
			f.probeStreak = 0
		}
		if f.probeStreak >= f.cfg.ReprobeTicks && f.penalty <= f.cfg.SuppressThreshold {
			f.toState(Probation)
			return ActAnnounce
		}

	case Probation:
		if anyBad {
			// A flap: straight back out, and the fresh penalty stacks on
			// the remains of the previous one, lengthening suppression.
			return f.withdraw()
		}
		f.cleanStreak++
		if f.cleanStreak >= f.cfg.ProbationTicks {
			f.toState(Healthy)
		}
	}
	return ActNone
}

// withdraw moves to Draining and charges the flap penalty.
func (f *FSM) withdraw() Action {
	f.toState(Draining)
	f.penalty += f.cfg.PenaltyPerFlap
	return ActWithdraw
}

// toState switches state and clears every streak counter.
func (f *FSM) toState(s State) {
	f.state = s
	f.badStreak, f.failStreak, f.cleanStreak, f.drainTicks, f.probeStreak = 0, 0, 0, 0, 0
}
