package sitemgr

// The decision journal: every state transition and routing action the
// manager takes is appended — crash-safely, on the shared internal/ledger
// framing — before the action is applied to the fabric. A SIGKILLed
// manager therefore resumes knowing each site's state and, crucially, its
// flap-damping penalty: without that, a crash-looping manager would reset
// damping on every restart and flap its sites at full speed.

import (
	"encoding/json"
	"errors"
	"fmt"

	"github.com/rootevent/anycastddos/internal/ledger"
)

// journalFormat identifies sitemgr journal files.
var journalFormat = ledger.Format{Magic: "RDNSSMJR", Version: 1}

// ErrJournalMismatch marks a resume against a journal written for a
// different manager configuration.
var ErrJournalMismatch = errors.New("sitemgr: journal belongs to a different deployment")

// Journal record types.
const (
	// RecMeta is the first record: the deployment identity.
	RecMeta = "meta"
	// RecTransition is one site's state change plus the action taken.
	RecTransition = "transition"
	// RecAbsorb marks a withdraw vetoed by the minimum-announced floor.
	RecAbsorb = "absorb"
	// RecRestart marks a crashed site's server being restarted.
	RecRestart = "restart"
)

// JournalRecord is one journal entry.
type JournalRecord struct {
	Type string `json:"type"`
	// Letter and Sites identify the deployment on meta records.
	Letter string `json:"letter,omitempty"`
	Sites  int    `json:"sites,omitempty"`
	Seed   int64  `json:"seed,omitempty"`
	// Tick is the manager tick the event happened on.
	Tick int `json:"tick"`
	// Site is the site index the event concerns.
	Site int `json:"site"`
	// From and To are State names on transition records.
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// Action is the routing action applied ("withdraw", "announce",
	// "none").
	Action string `json:"action,omitempty"`
	// Reason is a short human-readable cause ("probe+server bad",
	// "floor veto", "crash").
	Reason string `json:"reason,omitempty"`
	// Penalty is the site's damping penalty after the event.
	Penalty float64 `json:"penalty"`
	// Restarts counts restarts consumed, on restart records.
	Restarts int `json:"restarts,omitempty"`
}

// journal wraps the shared ledger with record encoding.
type journal struct {
	l *ledger.Ledger
}

func journalRecordValid(payload []byte) bool {
	var rec JournalRecord
	return json.Unmarshal(payload, &rec) == nil
}

func decodeJournal(payloads [][]byte) []JournalRecord {
	recs := make([]JournalRecord, 0, len(payloads))
	for _, p := range payloads {
		var rec JournalRecord
		if err := json.Unmarshal(p, &rec); err != nil {
			break // unreachable: journalRecordValid filtered this payload
		}
		recs = append(recs, rec)
	}
	if len(recs) == 0 {
		return nil
	}
	return recs
}

// openJournal opens (creating if absent) the journal at path and returns
// the recovered records.
func openJournal(path string) (*journal, []JournalRecord, error) {
	l, payloads, err := ledger.Open(path, journalFormat, journalRecordValid)
	if err != nil {
		return nil, nil, err
	}
	return &journal{l: l}, decodeJournal(payloads), nil
}

// ReadJournal recovers the readable records of the journal at path
// without opening it for writing — the observation path for a soak
// watching a live manager. A missing file reads as an empty journal.
func ReadJournal(path string) ([]JournalRecord, error) {
	payloads, err := ledger.Read(path, journalFormat, journalRecordValid)
	if err != nil {
		return nil, err
	}
	return decodeJournal(payloads), nil
}

func (j *journal) append(rec JournalRecord) error {
	payload, err := json.Marshal(&rec)
	if err != nil {
		return fmt.Errorf("sitemgr: encode journal record: %w", err)
	}
	if err := j.l.Append(payload); err != nil {
		return fmt.Errorf("sitemgr: journal: %w", err)
	}
	return nil
}

func (j *journal) close() error { return j.l.Close() }

// journalState is the per-site position a journal replay yields.
type journalState struct {
	state    State
	penalty  float64
	restarts int
}

// replayJournal folds records into per-site state. It returns the replayed
// positions (indexed by site), the last tick seen, and whether the meta
// record matched the given deployment. A journal with no meta record (or
// no records at all) replays as fresh.
func replayJournal(recs []JournalRecord, letter byte, sites int, seed int64) ([]journalState, int, error) {
	st := make([]journalState, sites)
	for i := range st {
		st[i] = journalState{state: Healthy}
	}
	lastTick := 0
	sawMeta := false
	for _, rec := range recs {
		if rec.Tick > lastTick {
			lastTick = rec.Tick
		}
		switch rec.Type {
		case RecMeta:
			if rec.Letter != string(letter) || rec.Sites != sites || rec.Seed != seed {
				return nil, 0, fmt.Errorf("%w: journal is %s/%d sites/seed %d, manager is %c/%d sites/seed %d",
					ErrJournalMismatch, rec.Letter, rec.Sites, rec.Seed, letter, sites, seed)
			}
			sawMeta = true
		case RecTransition:
			if rec.Site < 0 || rec.Site >= sites {
				continue
			}
			st[rec.Site].state = stateByName(rec.To)
			st[rec.Site].penalty = rec.Penalty
		case RecAbsorb:
			if rec.Site < 0 || rec.Site >= sites {
				continue
			}
			st[rec.Site].state = Stressed
			st[rec.Site].penalty = rec.Penalty
		case RecRestart:
			if rec.Site < 0 || rec.Site >= sites {
				continue
			}
			st[rec.Site].restarts = rec.Restarts
		}
	}
	if len(recs) > 0 && !sawMeta {
		return nil, 0, fmt.Errorf("%w: journal has records but no meta header", ErrJournalMismatch)
	}
	return st, lastTick, nil
}

// stateByName inverts State.String for journal replay; unknown names map
// to Withdrawn, the safe side (the site re-proves health before serving).
func stateByName(name string) State {
	for s := State(0); s < numStates; s++ {
		if s.String() == name {
			return s
		}
	}
	return Withdrawn
}
