package dnswire

import (
	"errors"
	"strings"
)

// Name-related wire errors.
var (
	ErrNameTooLong      = errors.New("dnswire: name exceeds 255 octets")
	ErrLabelTooLong     = errors.New("dnswire: label exceeds 63 octets")
	ErrEmptyLabel       = errors.New("dnswire: empty label inside name")
	ErrBadPointer       = errors.New("dnswire: invalid compression pointer")
	ErrPointerLoop      = errors.New("dnswire: compression pointer loop")
	ErrTruncatedName    = errors.New("dnswire: truncated name")
	ErrBadLabelByte     = errors.New("dnswire: reserved label type")
	ErrNameNotCanonical = errors.New("dnswire: non-canonical name text")
)

// CheckName validates a presentation-format name ("www.example.com" or
// "www.example.com." or "." for the root). It returns the canonical form
// (lower case, trailing dot removed, root = ""). Case folding is ASCII-only
// (RFC 4343): DNS compares names octet-wise with only A-Z folded, and
// running full Unicode lowering over raw wire labels would corrupt
// non-UTF-8 octets.
func CheckName(name string) (string, error) {
	if name == "." || name == "" {
		return "", nil
	}
	name = strings.TrimSuffix(name, ".")
	if strings.Contains(name, "..") || strings.HasPrefix(name, ".") {
		return "", ErrEmptyLabel
	}
	total := 1 // trailing root label length octet
	for _, label := range strings.Split(name, ".") {
		if len(label) == 0 {
			return "", ErrEmptyLabel
		}
		if len(label) > MaxLabel {
			return "", ErrLabelTooLong
		}
		total += len(label) + 1
	}
	if total > MaxName {
		return "", ErrNameTooLong
	}
	return asciiLower(name), nil
}

// asciiLower returns s with ASCII A-Z folded to a-z, allocating only when a
// fold is actually needed. All other octets pass through untouched.
func asciiLower(s string) string {
	for i := 0; i < len(s); i++ {
		if c := s[i]; 'A' <= c && c <= 'Z' {
			b := []byte(s)
			for j := i; j < len(b); j++ {
				if 'A' <= b[j] && b[j] <= 'Z' {
					b[j] += 'a' - 'A'
				}
			}
			return string(b)
		}
	}
	return s
}

// compressor tracks name suffixes already emitted into a message so later
// occurrences can be encoded as 2-byte pointers (RFC 1035 §4.1.4).
// Offsets are stored relative to base, the index in the output buffer where
// the current message's header starts.
type compressor struct {
	base    int
	offsets map[string]int
}

func newCompressor(base int) *compressor {
	return &compressor{base: base, offsets: make(map[string]int)}
}

// appendName appends the wire encoding of a canonical presentation name to
// buf, compressing against (and registering into) c. c may be nil to
// disable compression. The name must already be canonical (see CheckName).
func appendName(buf []byte, name string, c *compressor) ([]byte, error) {
	canonical, err := CheckName(name)
	if err != nil {
		return nil, err
	}
	rest := canonical
	for rest != "" {
		if c != nil {
			if off, ok := c.offsets[rest]; ok {
				return append(buf, byte(0xC0|off>>8), byte(off)), nil
			}
			// Pointers can only address the first 2^14 bytes of the message.
			if off := len(buf) - c.base; off < 0x3FFF {
				c.offsets[rest] = off
			}
		}
		label := rest
		if i := strings.IndexByte(rest, '.'); i >= 0 {
			label, rest = rest[:i], rest[i+1:]
		} else {
			rest = ""
		}
		buf = append(buf, byte(len(label)))
		buf = append(buf, label...)
	}
	return append(buf, 0), nil
}

// decodeName reads a possibly compressed name starting at off in msg. It
// returns the canonical presentation name ("" for the root), and the offset
// just past the name's first (uncompressed) encoding.
func decodeName(msg []byte, off int) (string, int, error) {
	var sb strings.Builder
	ptrBudget := len(msg) // strictly decreasing offsets would also work; a hop budget is simpler and robust
	jumped := false
	end := off
	total := 0
	for {
		if off >= len(msg) {
			return "", 0, ErrTruncatedName
		}
		b := int(msg[off])
		switch {
		case b == 0:
			if !jumped {
				end = off + 1
			}
			return sb.String(), end, nil
		case b&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return "", 0, ErrTruncatedName
			}
			target := (b&0x3F)<<8 | int(msg[off+1])
			if !jumped {
				end = off + 2
				jumped = true
			}
			if target >= len(msg) {
				return "", 0, ErrBadPointer
			}
			ptrBudget--
			if ptrBudget <= 0 {
				return "", 0, ErrPointerLoop
			}
			off = target
		case b&0xC0 != 0:
			return "", 0, ErrBadLabelByte
		default:
			if off+1+b > len(msg) {
				return "", 0, ErrTruncatedName
			}
			total += b + 1
			if total > MaxName {
				return "", 0, ErrNameTooLong
			}
			if sb.Len() > 0 {
				sb.WriteByte('.')
			}
			for _, c := range msg[off+1 : off+1+b] {
				if 'A' <= c && c <= 'Z' {
					c += 'a' - 'A'
				}
				sb.WriteByte(c)
			}
			off += 1 + b
			if !jumped {
				end = off
			}
		}
	}
}

// EncodedNameLen returns the wire length of name encoded without
// compression. Useful for response-size accounting in the traffic model.
func EncodedNameLen(name string) (int, error) {
	canonical, err := CheckName(name)
	if err != nil {
		return 0, err
	}
	if canonical == "" {
		return 1, nil
	}
	return len(canonical) + 2, nil
}
