package dnswire

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestCheckName(t *testing.T) {
	tests := []struct {
		in      string
		want    string
		wantErr error
	}{
		{".", "", nil},
		{"", "", nil},
		{"example.com", "example.com", nil},
		{"example.com.", "example.com", nil},
		{"WWW.Example.COM", "www.example.com", nil},
		{"a..b", "", ErrEmptyLabel},
		{".leading", "", ErrEmptyLabel},
		{strings.Repeat("a", 64) + ".com", "", ErrLabelTooLong},
		{strings.Repeat("abcdefgh.", 32) + "x", "", ErrNameTooLong},
	}
	for _, tt := range tests {
		got, err := CheckName(tt.in)
		if !errors.Is(err, tt.wantErr) {
			t.Errorf("CheckName(%q) err = %v, want %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("CheckName(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestAppendDecodeNameRoundTrip(t *testing.T) {
	names := []string{"", ".", "com", "example.com", "www.336901.com", "www.916yy.com",
		"k.root-servers.net", "ns1.gb-lon.k.ripe.net", "hostname.bind"}
	for _, name := range names {
		buf, err := appendName(nil, name, nil)
		if err != nil {
			t.Fatalf("appendName(%q): %v", name, err)
		}
		got, n, err := decodeName(buf, 0)
		if err != nil {
			t.Fatalf("decodeName(%q): %v", name, err)
		}
		if n != len(buf) {
			t.Errorf("decodeName(%q) consumed %d of %d", name, n, len(buf))
		}
		want, _ := CheckName(name)
		if got != want {
			t.Errorf("round trip %q -> %q, want %q", name, got, want)
		}
	}
}

func TestNameCompressionSavesBytes(t *testing.T) {
	c := newCompressor(0)
	buf, err := appendName(nil, "a.example.com", c)
	if err != nil {
		t.Fatal(err)
	}
	first := len(buf)
	buf, err = appendName(buf, "b.example.com", c)
	if err != nil {
		t.Fatal(err)
	}
	// Second name should be 1-byte label "b" + 2-byte pointer = 4 bytes.
	if second := len(buf) - first; second != 4 {
		t.Errorf("compressed second name took %d bytes, want 4", second)
	}
	// Decode both names back.
	n1, off, err := decodeName(buf, 0)
	if err != nil || n1 != "a.example.com" {
		t.Fatalf("first = %q err %v", n1, err)
	}
	n2, _, err := decodeName(buf, off)
	if err != nil || n2 != "b.example.com" {
		t.Fatalf("second = %q err %v", n2, err)
	}
}

func TestExactDuplicateCompressesToPointer(t *testing.T) {
	c := newCompressor(0)
	buf, _ := appendName(nil, "example.com", c)
	first := len(buf)
	buf, _ = appendName(buf, "example.com", c)
	if got := len(buf) - first; got != 2 {
		t.Errorf("duplicate name took %d bytes, want 2 (pure pointer)", got)
	}
}

func TestDecodeNamePointerLoop(t *testing.T) {
	// Pointer pointing at itself.
	buf := []byte{0xC0, 0x00}
	if _, _, err := decodeName(buf, 0); err == nil {
		t.Error("self-pointer should fail")
	}
	// Two pointers pointing at each other.
	buf = []byte{0xC0, 0x02, 0xC0, 0x00}
	if _, _, err := decodeName(buf, 0); err == nil {
		t.Error("pointer cycle should fail")
	}
}

func TestDecodeNameTruncated(t *testing.T) {
	cases := [][]byte{
		{},            // empty
		{3, 'a', 'b'}, // label cut short
		{0xC0},        // pointer cut short
		{2, 'h', 'i'}, // missing terminator
		{0xC0, 0x50},  // pointer beyond message
		{0x80, 'x'},   // reserved label type
	}
	for i, buf := range cases {
		if _, _, err := decodeName(buf, 0); err == nil {
			t.Errorf("case %d: expected error for % x", i, buf)
		}
	}
}

func TestDecodeNameForwardPointerTotalLength(t *testing.T) {
	// A name assembled through a pointer must still respect MaxName.
	// Build a 200-byte chunk and a name that points into it twice the
	// budget; simpler: craft name longer than 255 via pointer chain of
	// long labels.
	var buf []byte
	// Five 63-byte labels = 320 bytes of name > 255.
	label := bytes.Repeat([]byte{'a'}, 63)
	for i := 0; i < 5; i++ {
		buf = append(buf, 63)
		buf = append(buf, label...)
	}
	buf = append(buf, 0)
	if _, _, err := decodeName(buf, 0); !errors.Is(err, ErrNameTooLong) {
		t.Errorf("err = %v, want ErrNameTooLong", err)
	}
}

func TestEncodedNameLen(t *testing.T) {
	tests := []struct {
		name string
		want int
	}{
		{".", 1},
		{"", 1},
		{"com", 5},
		{"example.com", 13},
	}
	for _, tt := range tests {
		got, err := EncodedNameLen(tt.name)
		if err != nil || got != tt.want {
			t.Errorf("EncodedNameLen(%q) = %d,%v want %d", tt.name, got, err, tt.want)
		}
		// Cross-check against actual encoding.
		buf, _ := appendName(nil, tt.name, nil)
		if len(buf) != tt.want {
			t.Errorf("encoding of %q is %d bytes, EncodedNameLen says %d", tt.name, len(buf), tt.want)
		}
	}
	if _, err := EncodedNameLen("bad..name"); err == nil {
		t.Error("want error for invalid name")
	}
}

// Property: any valid label sequence round-trips through encode/decode.
func TestNameRoundTripProperty(t *testing.T) {
	f := func(rawLabels [][]byte) bool {
		var labels []string
		total := 1
		for _, rl := range rawLabels {
			if len(rl) == 0 {
				continue
			}
			if len(rl) > MaxLabel {
				rl = rl[:MaxLabel]
			}
			label := make([]byte, 0, len(rl))
			for _, b := range rl {
				// Restrict to letters/digits/hyphen so the presentation
				// format is unambiguous (no embedded dots).
				switch {
				case b >= 'a' && b <= 'z', b >= '0' && b <= '9', b == '-':
					label = append(label, b)
				case b >= 'A' && b <= 'Z':
					label = append(label, b+'a'-'A')
				}
			}
			if len(label) == 0 {
				continue
			}
			if total+len(label)+1 > MaxName {
				break
			}
			total += len(label) + 1
			labels = append(labels, string(label))
		}
		name := strings.Join(labels, ".")
		buf, err := appendName(nil, name, nil)
		if err != nil {
			return false
		}
		got, n, err := decodeName(buf, 0)
		return err == nil && n == len(buf) && got == name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: decodeName never panics or reads out of bounds on arbitrary
// bytes (fuzz-lite via quick).
func TestDecodeNameNoPanic(t *testing.T) {
	f := func(buf []byte, off uint8) bool {
		_, _, _ = decodeName(buf, int(off))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
