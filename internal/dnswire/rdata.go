package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
)

// RData-level errors.
var (
	ErrBadRData   = errors.New("dnswire: malformed rdata")
	ErrWrongType  = errors.New("dnswire: rdata accessor on wrong record type")
	ErrBadAddress = errors.New("dnswire: bad IP address")
)

// MakeA builds an A record.
func MakeA(name string, ttl uint32, ip net.IP) (RR, error) {
	v4 := ip.To4()
	if v4 == nil {
		return RR{}, ErrBadAddress
	}
	return RR{Name: name, Type: TypeA, Class: ClassINET, TTL: ttl, RData: append([]byte(nil), v4...)}, nil
}

// MakeAAAA builds an AAAA record.
func MakeAAAA(name string, ttl uint32, ip net.IP) (RR, error) {
	v6 := ip.To16()
	if v6 == nil || ip.To4() != nil {
		return RR{}, ErrBadAddress
	}
	return RR{Name: name, Type: TypeAAAA, Class: ClassINET, TTL: ttl, RData: append([]byte(nil), v6...)}, nil
}

// A returns the address of an A record.
func (rr RR) A() (net.IP, error) {
	if rr.Type != TypeA {
		return nil, ErrWrongType
	}
	if len(rr.RData) != 4 {
		return nil, ErrBadRData
	}
	return net.IP(append([]byte(nil), rr.RData...)), nil
}

// AAAA returns the address of an AAAA record.
func (rr RR) AAAA() (net.IP, error) {
	if rr.Type != TypeAAAA {
		return nil, ErrWrongType
	}
	if len(rr.RData) != 16 {
		return nil, ErrBadRData
	}
	return net.IP(append([]byte(nil), rr.RData...)), nil
}

// MakeNS builds an NS record. The target name is stored uncompressed, which
// is always legal on the wire.
func MakeNS(name string, ttl uint32, target string) (RR, error) {
	rd, err := appendName(nil, target, nil)
	if err != nil {
		return RR{}, err
	}
	return RR{Name: name, Type: TypeNS, Class: ClassINET, TTL: ttl, RData: rd}, nil
}

// NS returns the target of an NS record. Compression pointers inside rdata
// cannot be resolved without the whole message; use Message-level decoding
// (DecodeNSTarget) when parsing received packets.
func (rr RR) NS() (string, error) {
	if rr.Type != TypeNS {
		return "", ErrWrongType
	}
	name, n, err := decodeName(rr.RData, 0)
	if err != nil {
		return "", err
	}
	if n != len(rr.RData) {
		return "", ErrBadRData
	}
	return name, nil
}

// MakeTXT builds a TXT record from one or more character-strings. Each
// string must fit in 255 bytes.
func MakeTXT(name string, cl Class, ttl uint32, strs ...string) (RR, error) {
	var rd []byte
	for _, s := range strs {
		if len(s) > 255 {
			return RR{}, fmt.Errorf("dnswire: TXT string %d bytes: %w", len(s), ErrBadRData)
		}
		rd = append(rd, byte(len(s)))
		rd = append(rd, s...)
	}
	return RR{Name: name, Type: TypeTXT, Class: cl, TTL: ttl, RData: rd}, nil
}

// TXT returns the character-strings of a TXT record.
func (rr RR) TXT() ([]string, error) {
	if rr.Type != TypeTXT {
		return nil, ErrWrongType
	}
	var out []string
	for off := 0; off < len(rr.RData); {
		n := int(rr.RData[off])
		off++
		if off+n > len(rr.RData) {
			return nil, ErrBadRData
		}
		out = append(out, string(rr.RData[off:off+n]))
		off += n
	}
	return out, nil
}

// SOAData is the parsed rdata of a SOA record.
type SOAData struct {
	MName   string
	RName   string
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

// MakeSOA builds a SOA record.
func MakeSOA(name string, ttl uint32, d SOAData) (RR, error) {
	rd, err := appendName(nil, d.MName, nil)
	if err != nil {
		return RR{}, err
	}
	if rd, err = appendName(rd, d.RName, nil); err != nil {
		return RR{}, err
	}
	var nums [20]byte
	binary.BigEndian.PutUint32(nums[0:], d.Serial)
	binary.BigEndian.PutUint32(nums[4:], d.Refresh)
	binary.BigEndian.PutUint32(nums[8:], d.Retry)
	binary.BigEndian.PutUint32(nums[12:], d.Expire)
	binary.BigEndian.PutUint32(nums[16:], d.Minimum)
	rd = append(rd, nums[:]...)
	return RR{Name: name, Type: TypeSOA, Class: ClassINET, TTL: ttl, RData: rd}, nil
}

// SOA parses the rdata of a SOA record (uncompressed names only, as
// produced by MakeSOA).
func (rr RR) SOA() (SOAData, error) {
	if rr.Type != TypeSOA {
		return SOAData{}, ErrWrongType
	}
	var d SOAData
	mname, off, err := decodeName(rr.RData, 0)
	if err != nil {
		return SOAData{}, err
	}
	rname, off, err := decodeName(rr.RData, off)
	if err != nil {
		return SOAData{}, err
	}
	if off+20 != len(rr.RData) {
		return SOAData{}, ErrBadRData
	}
	d.MName, d.RName = mname, rname
	d.Serial = binary.BigEndian.Uint32(rr.RData[off:])
	d.Refresh = binary.BigEndian.Uint32(rr.RData[off+4:])
	d.Retry = binary.BigEndian.Uint32(rr.RData[off+8:])
	d.Expire = binary.BigEndian.Uint32(rr.RData[off+12:])
	d.Minimum = binary.BigEndian.Uint32(rr.RData[off+16:])
	return d, nil
}

// MakeOPT builds the EDNS(0) OPT pseudo-RR advertising the given UDP
// payload size (RFC 6891). The owner name is the root and TTL carries the
// extended rcode/flags (zero here).
func MakeOPT(udpSize uint16) RR {
	return RR{Name: "", Type: TypeOPT, Class: Class(udpSize)}
}

// OPTPayloadSize returns the advertised UDP payload size from an OPT RR.
func (rr RR) OPTPayloadSize() (uint16, error) {
	if rr.Type != TypeOPT {
		return 0, ErrWrongType
	}
	return uint16(rr.Class), nil
}
