package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Message-level wire errors.
var (
	ErrTruncatedMessage = errors.New("dnswire: truncated message")
	ErrTrailingGarbage  = errors.New("dnswire: trailing bytes after message")
	ErrTooManyRecords   = errors.New("dnswire: implausible record count")
	ErrRDataTooLong     = errors.New("dnswire: rdata exceeds 65535 octets")
)

// Header is the fixed 12-byte DNS message header, unpacked.
type Header struct {
	ID                 uint16
	Response           bool // QR
	Opcode             Opcode
	Authoritative      bool // AA
	Truncated          bool // TC
	RecursionDesired   bool // RD
	RecursionAvailable bool // RA
	RCode              RCode
}

// Question is a single entry of the question section.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// RR is a resource record. RData holds the raw wire rdata; use the typed
// accessors in rdata.go (or the Make* helpers) for structured access.
type RR struct {
	Name  string
	Type  Type
	Class Class
	TTL   uint32
	RData []byte
}

// Message is a complete DNS message.
//
// A Message reused across DecodeInto calls additionally owns decode scratch
// (an rdata arena and an interned-name cache, see fastpath.go); because of
// that unexported state, compare decoded Messages section-by-section rather
// than with reflect.DeepEqual on the whole struct.
type Message struct {
	Header     Header
	Questions  []Question
	Answers    []RR
	Authority  []RR
	Additional []RR

	// scratch backs the allocation-free DecodeInto path; nil until the
	// Message is first used with it.
	scratch *decodeScratch
}

// flags packs the header booleans into the wire flags word.
func (h Header) flags() uint16 {
	var f uint16
	if h.Response {
		f |= flagQR
	}
	f |= uint16(h.Opcode&0xF) << 11
	if h.Authoritative {
		f |= flagAA
	}
	if h.Truncated {
		f |= flagTC
	}
	if h.RecursionDesired {
		f |= flagRD
	}
	if h.RecursionAvailable {
		f |= flagRA
	}
	f |= uint16(h.RCode & 0xF)
	return f
}

func headerFromFlags(id, f uint16) Header {
	return Header{
		ID:                 id,
		Response:           f&flagQR != 0,
		Opcode:             Opcode(f >> 11 & 0xF),
		Authoritative:      f&flagAA != 0,
		Truncated:          f&flagTC != 0,
		RecursionDesired:   f&flagRD != 0,
		RecursionAvailable: f&flagRA != 0,
		RCode:              RCode(f & 0xF),
	}
}

// Encode appends the wire encoding of m to buf and returns the extended
// slice. Owner names are compressed against earlier names in the message.
func (m *Message) Encode(buf []byte) ([]byte, error) {
	base := len(buf)
	var hdr [HeaderLen]byte
	binary.BigEndian.PutUint16(hdr[0:], m.Header.ID)
	binary.BigEndian.PutUint16(hdr[2:], m.Header.flags())
	binary.BigEndian.PutUint16(hdr[4:], uint16(len(m.Questions)))
	binary.BigEndian.PutUint16(hdr[6:], uint16(len(m.Answers)))
	binary.BigEndian.PutUint16(hdr[8:], uint16(len(m.Authority)))
	binary.BigEndian.PutUint16(hdr[10:], uint16(len(m.Additional)))
	buf = append(buf, hdr[:]...)

	// Compression offsets are relative to the start of this message
	// (base), so encoding works even when appending to a non-empty buffer.
	c := newCompressor(base)
	var err error
	for _, q := range m.Questions {
		if buf, err = appendName(buf, q.Name, c); err != nil {
			return nil, fmt.Errorf("question %q: %w", q.Name, err)
		}
		buf = appendUint16(buf, uint16(q.Type))
		buf = appendUint16(buf, uint16(q.Class))
	}
	for _, section := range [][]RR{m.Answers, m.Authority, m.Additional} {
		for _, rr := range section {
			if buf, err = appendRR(buf, rr, c); err != nil {
				return nil, err
			}
		}
	}
	return buf, nil
}

func appendUint16(buf []byte, v uint16) []byte {
	return append(buf, byte(v>>8), byte(v))
}

func appendRR(buf []byte, rr RR, c *compressor) ([]byte, error) {
	var err error
	if buf, err = appendName(buf, rr.Name, c); err != nil {
		return nil, fmt.Errorf("rr %q: %w", rr.Name, err)
	}
	if len(rr.RData) > 0xFFFF {
		return nil, ErrRDataTooLong
	}
	buf = appendUint16(buf, uint16(rr.Type))
	buf = appendUint16(buf, uint16(rr.Class))
	buf = append(buf, byte(rr.TTL>>24), byte(rr.TTL>>16), byte(rr.TTL>>8), byte(rr.TTL))
	buf = appendUint16(buf, uint16(len(rr.RData)))
	buf = append(buf, rr.RData...)
	return buf, nil
}

// Pack encodes m into a fresh buffer.
func (m *Message) Pack() ([]byte, error) { return m.Encode(nil) }

// Decode parses a complete DNS message. It rejects trailing garbage; use
// DecodePrefix for streams.
func Decode(msg []byte) (*Message, error) {
	m, n, err := DecodePrefix(msg)
	if err != nil {
		return nil, err
	}
	if n != len(msg) {
		return nil, ErrTrailingGarbage
	}
	return m, nil
}

// DecodePrefix parses one DNS message from the front of msg and returns it
// along with the number of bytes consumed.
func DecodePrefix(msg []byte) (*Message, int, error) {
	if len(msg) < HeaderLen {
		return nil, 0, ErrTruncatedMessage
	}
	id := binary.BigEndian.Uint16(msg[0:])
	flags := binary.BigEndian.Uint16(msg[2:])
	qd := int(binary.BigEndian.Uint16(msg[4:]))
	an := int(binary.BigEndian.Uint16(msg[6:]))
	ns := int(binary.BigEndian.Uint16(msg[8:]))
	ar := int(binary.BigEndian.Uint16(msg[10:]))
	// Each question needs >= 5 bytes and each RR >= 11; reject counts the
	// message cannot possibly hold to bound allocation on hostile input.
	if qd*5+(an+ns+ar)*11 > len(msg)-HeaderLen {
		return nil, 0, ErrTooManyRecords
	}
	m := &Message{Header: headerFromFlags(id, flags)}
	off := HeaderLen
	var err error
	for i := 0; i < qd; i++ {
		var q Question
		if q, off, err = decodeQuestion(msg, off); err != nil {
			return nil, 0, fmt.Errorf("question %d: %w", i, err)
		}
		m.Questions = append(m.Questions, q)
	}
	for _, sec := range []struct {
		n    int
		dest *[]RR
		name string
	}{{an, &m.Answers, "answer"}, {ns, &m.Authority, "authority"}, {ar, &m.Additional, "additional"}} {
		for i := 0; i < sec.n; i++ {
			var rr RR
			if rr, off, err = decodeRR(msg, off); err != nil {
				return nil, 0, fmt.Errorf("%s %d: %w", sec.name, i, err)
			}
			*sec.dest = append(*sec.dest, rr)
		}
	}
	return m, off, nil
}

func decodeQuestion(msg []byte, off int) (Question, int, error) {
	name, off, err := decodeName(msg, off)
	if err != nil {
		return Question{}, 0, err
	}
	if off+4 > len(msg) {
		return Question{}, 0, ErrTruncatedMessage
	}
	q := Question{
		Name:  name,
		Type:  Type(binary.BigEndian.Uint16(msg[off:])),
		Class: Class(binary.BigEndian.Uint16(msg[off+2:])),
	}
	return q, off + 4, nil
}

func decodeRR(msg []byte, off int) (RR, int, error) {
	name, off, err := decodeName(msg, off)
	if err != nil {
		return RR{}, 0, err
	}
	if off+10 > len(msg) {
		return RR{}, 0, ErrTruncatedMessage
	}
	rr := RR{
		Name:  name,
		Type:  Type(binary.BigEndian.Uint16(msg[off:])),
		Class: Class(binary.BigEndian.Uint16(msg[off+2:])),
		TTL:   binary.BigEndian.Uint32(msg[off+4:]),
	}
	rdlen := int(binary.BigEndian.Uint16(msg[off+8:]))
	off += 10
	if off+rdlen > len(msg) {
		return RR{}, 0, ErrTruncatedMessage
	}
	// Copy so the message buffer can be reused by the caller.
	rr.RData = append([]byte(nil), msg[off:off+rdlen]...)
	return rr, off + rdlen, nil
}

// NewQuery builds a standard query for (name, type, class) with the given
// transaction ID.
func NewQuery(id uint16, name string, t Type, cl Class) *Message {
	return &Message{
		Header:    Header{ID: id, Opcode: OpcodeQuery, RecursionDesired: false},
		Questions: []Question{{Name: name, Type: t, Class: cl}},
	}
}

// NewResponse builds the skeleton of a response to query q, echoing its ID
// and question section.
func NewResponse(q *Message, rcode RCode) *Message {
	resp := &Message{
		Header: Header{
			ID:       q.Header.ID,
			Response: true,
			Opcode:   q.Header.Opcode,
			RCode:    rcode,
		},
	}
	resp.Questions = append(resp.Questions, q.Questions...)
	return resp
}
