package dnswire

import (
	"bytes"
	"testing"
)

// Fuzz targets guard the parsers against hostile packets. `go test` runs
// the seed corpus; `go test -fuzz=FuzzDecode` explores further.

func FuzzDecode(f *testing.F) {
	q := NewQuery(1, "www.336901.com", TypeA, ClassINET)
	pkt, _ := q.Pack()
	f.Add(pkt)
	resp := NewResponse(q, RCodeNoError)
	txt, _ := MakeTXT("hostname.bind", ClassCHAOS, 0, "ns1.ams.k.ripe.net")
	resp.Answers = append(resp.Answers, txt)
	rpkt, _ := resp.Pack()
	f.Add(rpkt)
	f.Add([]byte{0xC0, 0x00})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode without panicking, and the
		// re-encoded form must decode to the same sections.
		out, err := m.Pack()
		if err != nil {
			// Names with >63-byte labels can decode (via pointers) but
			// not re-encode; that's acceptable.
			return
		}
		m2, err := Decode(out)
		if err != nil {
			t.Fatalf("re-encoded message does not decode: %v", err)
		}
		if len(m2.Questions) != len(m.Questions) || len(m2.Answers) != len(m.Answers) {
			t.Fatalf("section counts changed: %+v vs %+v", m2, m)
		}
	})
}

func FuzzDecodeName(f *testing.F) {
	buf, _ := appendName(nil, "www.example.com", nil)
	f.Add(buf, 0)
	f.Add([]byte{0xC0, 0x02, 0xC0, 0x00}, 0)
	f.Fuzz(func(t *testing.T, data []byte, off int) {
		if off < 0 || off > len(data) {
			return
		}
		name, n, err := decodeName(data, off)
		if err != nil {
			return
		}
		if n < off || n > len(data) {
			t.Fatalf("consumed out of range: %d", n)
		}
		if len(name) > MaxName {
			t.Fatalf("name too long: %d", len(name))
		}
	})
}
