package dnswire

import (
	"bytes"
	"errors"
	"net"
	"reflect"
	"testing"
	"testing/quick"
)

func mustPack(t *testing.T, m *Message) []byte {
	t.Helper()
	buf, err := m.Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	return buf
}

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(0x1234, "www.336901.com", TypeA, ClassINET)
	buf := mustPack(t, q)
	got, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Header.ID != 0x1234 || got.Header.Response {
		t.Errorf("header = %+v", got.Header)
	}
	if len(got.Questions) != 1 {
		t.Fatalf("questions = %d", len(got.Questions))
	}
	if q := got.Questions[0]; q.Name != "www.336901.com" || q.Type != TypeA || q.Class != ClassINET {
		t.Errorf("question = %+v", q)
	}
}

func TestChaosQueryWireSize(t *testing.T) {
	// The standard CHAOS identity query: hostname.bind TXT CH.
	q := NewQuery(1, "hostname.bind", TypeTXT, ClassCHAOS)
	buf := mustPack(t, q)
	// 12 header + 15 name + 4 = 31 bytes.
	if len(buf) != 31 {
		t.Errorf("CHAOS query = %d bytes, want 31", len(buf))
	}
}

func TestAttackQuerySizeMatchesPaper(t *testing.T) {
	// §3.1: RSSAC-002 reports query sizes in 16-byte bins and the paper
	// identifies the attacks by unusually popular bins — the 32-to-47 B
	// bin on Nov 30 (www.336901.com) and the 16-to-32 B bin on Dec 1
	// (www.916yy.com). The two names differ by one byte and straddle a
	// bin boundary; our codec must reproduce that placement exactly.
	for _, tt := range []struct {
		qname string
		binLo int
		binHi int // exclusive
	}{
		{"www.336901.com", 32, 48}, // Nov 30
		{"www.916yy.com", 16, 32},  // Dec 1
	} {
		q := NewQuery(1, tt.qname, TypeA, ClassINET)
		buf := mustPack(t, q)
		if len(buf) < tt.binLo || len(buf) >= tt.binHi {
			t.Errorf("%s: DNS message = %d bytes, want in [%d,%d)", tt.qname, len(buf), tt.binLo, tt.binHi)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	q := NewQuery(7, "example.com", TypeNS, ClassINET)
	resp := NewResponse(q, RCodeNoError)
	resp.Header.Authoritative = true
	ns, err := MakeNS("example.com", 3600, "a.iana-servers.net")
	if err != nil {
		t.Fatal(err)
	}
	resp.Answers = append(resp.Answers, ns)
	a, err := MakeA("a.iana-servers.net", 3600, net.IPv4(199, 43, 135, 53))
	if err != nil {
		t.Fatal(err)
	}
	resp.Additional = append(resp.Additional, a)

	buf := mustPack(t, resp)
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Header.Response || !got.Header.Authoritative || got.Header.ID != 7 {
		t.Errorf("header = %+v", got.Header)
	}
	if len(got.Answers) != 1 || len(got.Additional) != 1 {
		t.Fatalf("sections = %d/%d/%d", len(got.Answers), len(got.Authority), len(got.Additional))
	}
	target, err := got.Answers[0].NS()
	if err != nil || target != "a.iana-servers.net" {
		t.Errorf("NS target = %q err %v", target, err)
	}
	ip, err := got.Additional[0].A()
	if err != nil || !ip.Equal(net.IPv4(199, 43, 135, 53)) {
		t.Errorf("A = %v err %v", ip, err)
	}
}

func TestCompressionAcrossSections(t *testing.T) {
	// Owner names repeated across sections must compress: a response with
	// 13 root-server NS records should be far smaller than uncompressed.
	q := NewQuery(1, "", TypeNS, ClassINET)
	resp := NewResponse(q, RCodeNoError)
	letters := "abcdefghijklm"
	for _, l := range letters {
		ns, err := MakeNS("", 3600000, string(l)+".root-servers.net")
		if err != nil {
			t.Fatal(err)
		}
		resp.Answers = append(resp.Answers, ns)
	}
	buf := mustPack(t, resp)
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != 13 {
		t.Fatalf("answers = %d", len(got.Answers))
	}
	// Root NS rdata is uncompressed in our encoder (18+2 bytes each), but
	// owner names (root, 1 byte) are trivially small; whole message must
	// fit classic UDP.
	if len(buf) > MaxUDPPayload {
		t.Errorf("root NS response = %d bytes, want <= 512", len(buf))
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	q := NewQuery(1, "example.com", TypeA, ClassINET)
	buf := mustPack(t, q)
	buf = append(buf, 0xAA)
	if _, err := Decode(buf); !errors.Is(err, ErrTrailingGarbage) {
		t.Errorf("err = %v, want ErrTrailingGarbage", err)
	}
	// DecodePrefix should succeed and report the consumed length.
	m, n, err := DecodePrefix(buf)
	if err != nil || n != len(buf)-1 || m.Questions[0].Name != "example.com" {
		t.Errorf("DecodePrefix = %v,%d,%v", m, n, err)
	}
}

func TestDecodeTruncatedHeader(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); !errors.Is(err, ErrTruncatedMessage) {
		t.Errorf("err = %v", err)
	}
}

func TestDecodeImplausibleCounts(t *testing.T) {
	// Header claiming 65535 answers in a 12-byte message.
	buf := make([]byte, HeaderLen)
	buf[6] = 0xFF
	buf[7] = 0xFF
	if _, err := Decode(buf); !errors.Is(err, ErrTooManyRecords) {
		t.Errorf("err = %v, want ErrTooManyRecords", err)
	}
}

func TestTXTRoundTrip(t *testing.T) {
	rr, err := MakeTXT("hostname.bind", ClassCHAOS, 0, "k1.ams-ix.k.ripe.net")
	if err != nil {
		t.Fatal(err)
	}
	strs, err := rr.TXT()
	if err != nil || len(strs) != 1 || strs[0] != "k1.ams-ix.k.ripe.net" {
		t.Errorf("TXT = %v err %v", strs, err)
	}
	// Multi-string TXT.
	rr2, err := MakeTXT("x", ClassINET, 60, "one", "two", "three")
	if err != nil {
		t.Fatal(err)
	}
	strs2, _ := rr2.TXT()
	if !reflect.DeepEqual(strs2, []string{"one", "two", "three"}) {
		t.Errorf("multi TXT = %v", strs2)
	}
	// Oversized string rejected.
	if _, err := MakeTXT("x", ClassINET, 0, string(bytes.Repeat([]byte{'a'}, 256))); err == nil {
		t.Error("want error for 256-byte TXT string")
	}
	// Malformed rdata detected.
	bad := RR{Type: TypeTXT, RData: []byte{5, 'a'}}
	if _, err := bad.TXT(); !errors.Is(err, ErrBadRData) {
		t.Errorf("bad TXT err = %v", err)
	}
}

func TestSOARoundTrip(t *testing.T) {
	d := SOAData{
		MName: "a.root-servers.net", RName: "nstld.verisign-grs.com",
		Serial: 2015113000, Refresh: 1800, Retry: 900, Expire: 604800, Minimum: 86400,
	}
	rr, err := MakeSOA("", 86400, d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rr.SOA()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Errorf("SOA = %+v, want %+v", got, d)
	}
}

func TestAAAARoundTrip(t *testing.T) {
	ip := net.ParseIP("2001:7fd::1") // K-Root
	rr, err := MakeAAAA("k.root-servers.net", 3600, ip)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rr.AAAA()
	if err != nil || !got.Equal(ip) {
		t.Errorf("AAAA = %v err %v", got, err)
	}
	if _, err := MakeAAAA("x", 0, net.IPv4(1, 2, 3, 4)); err == nil {
		t.Error("MakeAAAA should reject IPv4")
	}
	if _, err := MakeA("x", 0, ip); err == nil {
		t.Error("MakeA should reject IPv6")
	}
}

func TestWrongTypeAccessors(t *testing.T) {
	a, _ := MakeA("x", 0, net.IPv4(1, 2, 3, 4))
	if _, err := a.TXT(); !errors.Is(err, ErrWrongType) {
		t.Error("TXT on A record should fail")
	}
	if _, err := a.NS(); !errors.Is(err, ErrWrongType) {
		t.Error("NS on A record should fail")
	}
	if _, err := a.SOA(); !errors.Is(err, ErrWrongType) {
		t.Error("SOA on A record should fail")
	}
	if _, err := a.AAAA(); !errors.Is(err, ErrWrongType) {
		t.Error("AAAA on A record should fail")
	}
	if _, err := a.OPTPayloadSize(); !errors.Is(err, ErrWrongType) {
		t.Error("OPT accessor on A record should fail")
	}
}

func TestOPT(t *testing.T) {
	opt := MakeOPT(4096)
	size, err := opt.OPTPayloadSize()
	if err != nil || size != 4096 {
		t.Errorf("OPT size = %d err %v", size, err)
	}
}

func TestEncodeAppendsToExistingBuffer(t *testing.T) {
	prefix := []byte("PREFIX")
	q := NewQuery(9, "a.example.com", TypeA, ClassINET)
	resp := NewResponse(q, RCodeNoError)
	ns, _ := MakeNS("b.example.com", 60, "c.example.com")
	resp.Answers = append(resp.Answers, ns)
	buf, err := resp.Encode(append([]byte(nil), prefix...))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf, prefix) {
		t.Fatal("prefix destroyed")
	}
	got, err := Decode(buf[len(prefix):])
	if err != nil {
		t.Fatalf("decode after prefix: %v", err)
	}
	if got.Answers[0].Name != "b.example.com" {
		t.Errorf("answer name = %q", got.Answers[0].Name)
	}
}

func TestHeaderFlagsRoundTrip(t *testing.T) {
	h := Header{
		ID: 0xBEEF, Response: true, Opcode: OpcodeStatus, Authoritative: true,
		Truncated: true, RecursionDesired: true, RecursionAvailable: true,
		RCode: RCodeRefused,
	}
	m := &Message{Header: h}
	buf := mustPack(t, m)
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header != h {
		t.Errorf("header = %+v, want %+v", got.Header, h)
	}
}

func TestTypeClassRCodeStrings(t *testing.T) {
	if TypeTXT.String() != "TXT" || Type(999).String() != "TYPE999" {
		t.Error("Type.String mismatch")
	}
	if ClassCHAOS.String() != "CH" || Class(9).String() != "CLASS9" {
		t.Error("Class.String mismatch")
	}
	if RCodeNXDomain.String() != "NXDOMAIN" || RCode(15).String() != "RCODE15" {
		t.Error("RCode.String mismatch")
	}
}

// Property: messages with arbitrary well-formed questions round-trip.
func TestMessageRoundTripProperty(t *testing.T) {
	f := func(id uint16, n uint8, tcode, ccode uint16) bool {
		m := &Message{Header: Header{ID: id, Opcode: OpcodeQuery}}
		labels := []string{"com", "net", "org", "example.com", "www.example.net"}
		for i := 0; i < int(n%4); i++ {
			m.Questions = append(m.Questions, Question{
				Name:  labels[(int(id)+i)%len(labels)],
				Type:  Type(tcode%260 + 1),
				Class: Class(ccode%4 + 1),
			})
		}
		buf, err := m.Pack()
		if err != nil {
			return false
		}
		got, err := Decode(buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Questions, m.Questions) || (len(m.Questions) == 0 && len(got.Questions) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Decode never panics on arbitrary input.
func TestDecodeNoPanic(t *testing.T) {
	f := func(buf []byte) bool {
		_, _ = Decode(buf)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// Property: Pack is deterministic.
func TestPackDeterministic(t *testing.T) {
	q := NewQuery(1, "www.example.com", TypeA, ClassINET)
	b1 := mustPack(t, q)
	b2 := mustPack(t, q)
	if !bytes.Equal(b1, b2) {
		t.Error("Pack not deterministic")
	}
}

func BenchmarkPackQuery(b *testing.B) {
	q := NewQuery(1, "www.336901.com", TypeA, ClassINET)
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = q.Encode(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeQuery(b *testing.B) {
	q := NewQuery(1, "www.336901.com", TypeA, ClassINET)
	buf, _ := q.Pack()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
