// Package dnswire implements a DNS message codec on the wire format of
// RFC 1035 (with the EDNS(0) OPT pseudo-RR of RFC 6891), using only the
// standard library.
//
// The package is the foundation of the measurement side of this repository:
// the CHAOS-class TXT queries used to identify anycast sites and servers
// (hostname.bind / id.server, RFC 4892) are ordinary DNS messages, and both
// the in-process UDP root servers (internal/dnsserver) and the Atlas-style
// prober exchange packets produced and parsed here.
//
// Design follows the layered-decoder style of gopacket: decoding is
// non-allocating where practical, parses lazily held rdata into typed
// structures on demand, and never trusts lengths from the wire without
// bounds checks. Name compression is fully supported on decode and applied
// to owner names on encode.
package dnswire

import "fmt"

// Type is a DNS resource record type.
type Type uint16

// Record types used by the root service and our measurement tooling.
const (
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypePTR   Type = 12
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	TypeOPT   Type = 41
	TypeANY   Type = 255
)

// String returns the conventional mnemonic for the type.
func (t Type) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypeCNAME:
		return "CNAME"
	case TypeSOA:
		return "SOA"
	case TypePTR:
		return "PTR"
	case TypeMX:
		return "MX"
	case TypeTXT:
		return "TXT"
	case TypeAAAA:
		return "AAAA"
	case TypeOPT:
		return "OPT"
	case TypeANY:
		return "ANY"
	default:
		return fmt.Sprintf("TYPE%d", uint16(t))
	}
}

// Class is a DNS class.
type Class uint16

// Classes: Internet, and CHAOS which carries server-identity queries.
const (
	ClassINET  Class = 1
	ClassCHAOS Class = 3
	ClassANY   Class = 255
)

// String returns the conventional mnemonic for the class.
func (c Class) String() string {
	switch c {
	case ClassINET:
		return "IN"
	case ClassCHAOS:
		return "CH"
	case ClassANY:
		return "ANY"
	default:
		return fmt.Sprintf("CLASS%d", uint16(c))
	}
}

// RCode is a DNS response code.
type RCode uint8

// Response codes (RFC 1035 §4.1.1).
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImp   RCode = 4
	RCodeRefused  RCode = 5
)

// String returns the conventional mnemonic for the rcode.
func (r RCode) String() string {
	switch r {
	case RCodeNoError:
		return "NOERROR"
	case RCodeFormErr:
		return "FORMERR"
	case RCodeServFail:
		return "SERVFAIL"
	case RCodeNXDomain:
		return "NXDOMAIN"
	case RCodeNotImp:
		return "NOTIMP"
	case RCodeRefused:
		return "REFUSED"
	default:
		return fmt.Sprintf("RCODE%d", uint8(r))
	}
}

// Opcode is a DNS operation code.
type Opcode uint8

// Opcodes. Only standard queries appear in this system.
const (
	OpcodeQuery  Opcode = 0
	OpcodeStatus Opcode = 2
)

// Header flag bits within the 16-bit flags word (RFC 1035 §4.1.1).
const (
	flagQR uint16 = 1 << 15
	flagAA uint16 = 1 << 10
	flagTC uint16 = 1 << 9
	flagRD uint16 = 1 << 8
	flagRA uint16 = 1 << 7
)

// HeaderLen is the fixed size of the DNS message header in bytes.
const HeaderLen = 12

// MaxUDPPayload is the classic maximum DNS-over-UDP payload without EDNS.
const MaxUDPPayload = 512

// MaxName is the maximum length of a wire-format domain name.
const MaxName = 255

// MaxLabel is the maximum length of a single label.
const MaxLabel = 63
