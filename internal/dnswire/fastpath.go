// Allocation-free decode/encode fast path.
//
// The serving loop in internal/dnsserver handles one packet per query at
// flood rates, so the codec must not touch the heap per packet. DecodeInto
// parses into a caller-owned Message whose section slices, rdata arena, and
// interned-name cache are reused across calls; AppendResponse emits a
// response by echoing the question and splicing in a precomputed,
// position-independent answer tail. Both are fuzz-proved equivalent to the
// allocating Decode/Encode pair (fastpath_test.go), and the hot helpers
// carry //repolint:hot so the structural lint rejects reintroduced
// allocations before the bench gate ever measures them.
package dnswire

import "encoding/binary"

// maxInternedNames bounds the decode-side name cache. A flood of unique
// spoofed names cannot grow it without bound: at the cap the cache is
// cleared wholesale (the steady-state fixed-name flood re-warms it with one
// entry on the next packet).
const maxInternedNames = 1024

// decodeScratch is the reusable state behind DecodeInto: a name cache that
// makes repeated query names allocation-free, an rdata arena sized to the
// packet, and a stack buffer for name assembly.
type decodeScratch struct {
	names map[string]string
	arena []byte
	buf   [MaxName]byte
}

func newDecodeScratch() *decodeScratch {
	return &decodeScratch{names: make(map[string]string, maxInternedNames)}
}

// intern returns a string equal to b, reusing a cached copy when one
// exists. The map index on a string conversion compiles to a lookup without
// materializing the string, so the warm path performs no allocation.
//
//repolint:hot
func (sc *decodeScratch) intern(b []byte) string {
	if s, ok := sc.names[string(b)]; ok {
		return s
	}
	return sc.internSlow(b)
}

// internSlow materializes and caches a new name (the cold path — at most
// maxInternedNames allocations between cache resets).
func (sc *decodeScratch) internSlow(b []byte) string {
	if len(sc.names) >= maxInternedNames {
		clear(sc.names)
	}
	s := string(b)
	sc.names[s] = s
	return s
}

// DecodeInto parses a complete DNS message into m, reusing m's section
// slices and decode scratch. It accepts exactly the messages Decode accepts
// and rejects exactly the ones it rejects (returning the same sentinel
// errors, without Decode's positional wrapping); decoded fields are
// identical. On error m is left in an unspecified partial state.
//
// Unlike Decode, the returned RData slices alias scratch owned by m: they
// are valid until the next DecodeInto call on the same Message.
func DecodeInto(msg []byte, m *Message) error {
	if len(msg) < HeaderLen {
		return ErrTruncatedMessage
	}
	sc := m.scratch
	if sc == nil {
		sc = newDecodeScratch()
		m.scratch = sc
	}
	id := binary.BigEndian.Uint16(msg[0:])
	flags := binary.BigEndian.Uint16(msg[2:])
	qd := int(binary.BigEndian.Uint16(msg[4:]))
	an := int(binary.BigEndian.Uint16(msg[6:]))
	ns := int(binary.BigEndian.Uint16(msg[8:]))
	ar := int(binary.BigEndian.Uint16(msg[10:]))
	// Same plausibility bound as DecodePrefix: each question needs >= 5
	// bytes and each RR >= 11.
	if qd*5+(an+ns+ar)*11 > len(msg)-HeaderLen {
		return ErrTooManyRecords
	}
	m.Header = headerFromFlags(id, flags)
	m.Questions = m.Questions[:0]
	m.Answers = m.Answers[:0]
	m.Authority = m.Authority[:0]
	m.Additional = m.Additional[:0]
	// Total rdata cannot exceed the packet, so sizing the arena to the
	// packet up front guarantees no mid-decode reallocation — earlier
	// RData slices stay valid as later records land.
	if cap(sc.arena) < len(msg) {
		sc.arena = make([]byte, 0, len(msg))
	} else {
		sc.arena = sc.arena[:0]
	}
	off := HeaderLen
	for i := 0; i < qd; i++ {
		n, end, err := decodeNameBuf(msg, off, &sc.buf)
		if err != nil {
			return err
		}
		if end+4 > len(msg) {
			return ErrTruncatedMessage
		}
		m.Questions = append(m.Questions, Question{
			Name:  sc.intern(sc.buf[:n]),
			Type:  Type(binary.BigEndian.Uint16(msg[end:])),
			Class: Class(binary.BigEndian.Uint16(msg[end+2:])),
		})
		off = end + 4
	}
	var err error
	if off, err = decodeRRsInto(msg, off, an, &m.Answers, sc); err != nil {
		return err
	}
	if off, err = decodeRRsInto(msg, off, ns, &m.Authority, sc); err != nil {
		return err
	}
	if off, err = decodeRRsInto(msg, off, ar, &m.Additional, sc); err != nil {
		return err
	}
	if off != len(msg) {
		return ErrTrailingGarbage
	}
	return nil
}

// decodeRRsInto parses n resource records starting at off, appending to
// *dst (reusing its capacity) with rdata carved from the scratch arena.
func decodeRRsInto(msg []byte, off, n int, dst *[]RR, sc *decodeScratch) (int, error) {
	for i := 0; i < n; i++ {
		nameLen, end, err := decodeNameBuf(msg, off, &sc.buf)
		if err != nil {
			return 0, err
		}
		if end+10 > len(msg) {
			return 0, ErrTruncatedMessage
		}
		rdlen := int(binary.BigEndian.Uint16(msg[end+8:]))
		rdStart := end + 10
		if rdStart+rdlen > len(msg) {
			return 0, ErrTruncatedMessage
		}
		aStart := len(sc.arena)
		sc.arena = append(sc.arena, msg[rdStart:rdStart+rdlen]...)
		*dst = append(*dst, RR{
			Name:  sc.intern(sc.buf[:nameLen]),
			Type:  Type(binary.BigEndian.Uint16(msg[end:])),
			Class: Class(binary.BigEndian.Uint16(msg[end+2:])),
			TTL:   binary.BigEndian.Uint32(msg[end+4:]),
			RData: sc.arena[aStart:len(sc.arena):len(sc.arena)],
		})
		off = rdStart + rdlen
	}
	return off, nil
}

// decodeNameBuf is decodeName writing the canonical presentation name into
// dst instead of a strings.Builder: same traversal, same bounds and loop
// protection, same ASCII-only lowering, so the two accept and reject
// identical inputs. It returns the presentation length (0 for the root) and
// the offset just past the name's first encoding. The presentation form of
// a maximal wire name is at most MaxName-1 bytes, so dst never overflows.
//
//repolint:hot
func decodeNameBuf(msg []byte, off int, dst *[MaxName]byte) (n, end int, err error) {
	ptrBudget := len(msg)
	jumped := false
	end = off
	total := 0
	for {
		if off >= len(msg) {
			return 0, 0, ErrTruncatedName
		}
		b := int(msg[off])
		switch {
		case b == 0:
			if !jumped {
				end = off + 1
			}
			return n, end, nil
		case b&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return 0, 0, ErrTruncatedName
			}
			target := (b&0x3F)<<8 | int(msg[off+1])
			if !jumped {
				end = off + 2
				jumped = true
			}
			if target >= len(msg) {
				return 0, 0, ErrBadPointer
			}
			ptrBudget--
			if ptrBudget <= 0 {
				return 0, 0, ErrPointerLoop
			}
			off = target
		case b&0xC0 != 0:
			return 0, 0, ErrBadLabelByte
		default:
			if off+1+b > len(msg) {
				return 0, 0, ErrTruncatedName
			}
			total += b + 1
			if total > MaxName {
				return 0, 0, ErrNameTooLong
			}
			if n > 0 {
				dst[n] = '.'
				n++
			}
			for _, c := range msg[off+1 : off+1+b] {
				if 'A' <= c && c <= 'Z' {
					c += 'a' - 'A'
				}
				dst[n] = c
				n++
			}
			off += 1 + b
			if !jumped {
				end = off
			}
		}
	}
}

// AppendResponse appends a complete response message to dst and returns the
// extended slice: a header carrying q's ID and opcode with QR set, q's
// question section re-encoded, and tail spliced in verbatim as the
// answer/authority/additional sections (an/ns/ar are the record counts
// inside tail). The tail must be position-independent: compression pointers
// inside it may only target the first question's owner name at offset
// HeaderLen (0xC00C), which is where this function places it — exactly the
// layout Message.Encode produces for the single-question responses the
// server emits, so the output is byte-identical to the legacy path.
//
// For messages with a single question, AppendResponse(dst, q, rcode, aa,
// tc, nil, 0, 0, 0) equals NewResponse(q, rcode) (+AA/TC) followed by
// Encode — proved in TestAppendResponseMatchesEncode.
//
//repolint:hot
func AppendResponse(dst []byte, q *Message, rcode RCode, aa, tc bool, tail []byte, an, ns, ar int) ([]byte, error) {
	base := len(dst)
	need := base + HeaderLen + len(tail)
	for i := range q.Questions {
		need += len(q.Questions[i].Name) + 2 + 4
	}
	dst = growCap(dst, need)
	dst = dst[:base+HeaderLen]
	flags := flagQR | uint16(q.Header.Opcode&0xF)<<11 | uint16(rcode&0xF)
	if aa {
		flags |= flagAA
	}
	if tc {
		flags |= flagTC
	}
	binary.BigEndian.PutUint16(dst[base:], q.Header.ID)
	binary.BigEndian.PutUint16(dst[base+2:], flags)
	binary.BigEndian.PutUint16(dst[base+4:], uint16(len(q.Questions)))
	binary.BigEndian.PutUint16(dst[base+6:], uint16(an))
	binary.BigEndian.PutUint16(dst[base+8:], uint16(ns))
	binary.BigEndian.PutUint16(dst[base+10:], uint16(ar))
	var err error
	for i := range q.Questions {
		if dst, err = putName(dst, q.Questions[i].Name); err != nil {
			return nil, err
		}
		w := len(dst)
		dst = dst[:w+4]
		binary.BigEndian.PutUint16(dst[w:], uint16(q.Questions[i].Type))
		binary.BigEndian.PutUint16(dst[w+2:], uint16(q.Questions[i].Class))
	}
	w := len(dst)
	dst = dst[:w+len(tail)]
	copy(dst[w:], tail)
	return dst, nil
}

// putName appends the uncompressed wire encoding of a presentation-format
// name, validating and canonicalizing exactly like CheckName+appendName:
// one trailing dot trimmed, ASCII A-Z folded, and the same set of names
// rejected (a name with several defects may surface a different sentinel —
// CheckName pre-scans for empty labels, this single pass reports the first
// defect it meets). The caller must have reserved len(name)+2 bytes of
// capacity.
//
//repolint:hot
func putName(dst []byte, name string) ([]byte, error) {
	w := len(dst)
	if name == "." || name == "" {
		dst = dst[:w+1]
		dst[w] = 0
		return dst, nil
	}
	if name[len(name)-1] == '.' {
		name = name[:len(name)-1]
	}
	lenAt := w // index of the pending label's length octet
	dst = dst[:w+1]
	w++
	labelLen := 0
	total := 1
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c == '.' {
			if labelLen == 0 {
				return nil, ErrEmptyLabel
			}
			dst[lenAt] = byte(labelLen)
			total += labelLen + 1
			lenAt = w
			dst = dst[:w+1]
			w++
			labelLen = 0
			continue
		}
		labelLen++
		if labelLen > MaxLabel {
			return nil, ErrLabelTooLong
		}
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		dst = dst[:w+1]
		dst[w] = c
		w++
	}
	if labelLen == 0 {
		return nil, ErrEmptyLabel
	}
	dst[lenAt] = byte(labelLen)
	total += labelLen + 1
	if total > MaxName {
		return nil, ErrNameTooLong
	}
	dst = dst[:w+1]
	dst[w] = 0
	return dst, nil
}

// growCap returns dst with capacity at least need, preserving contents.
// Deliberately not hot: it is the one place the encode path may allocate,
// and only until the caller's buffer warms up to its steady-state size.
func growCap(dst []byte, need int) []byte {
	if cap(dst) >= need {
		return dst
	}
	grown := make([]byte, len(dst), need)
	copy(grown, dst)
	return grown
}
