package dnswire

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func TestTCPFrameRoundTrip(t *testing.T) {
	q := NewQuery(99, "example.com", TypeA, ClassINET)
	pkt, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTCP(&buf, pkt); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != len(pkt)+2 {
		t.Errorf("frame length = %d, want %d", buf.Len(), len(pkt)+2)
	}
	got, err := ReadTCP(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pkt) {
		t.Error("round-tripped frame differs")
	}
}

func TestTCPFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTCP(&buf, make([]byte, 70000)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadTCPTruncatedStream(t *testing.T) {
	// Length claims 10 bytes, only 4 present.
	r := bytes.NewReader([]byte{0, 10, 1, 2, 3, 4})
	if _, err := ReadTCP(r, nil); err == nil {
		t.Error("want error for truncated body")
	}
	// Missing length prefix entirely.
	if _, err := ReadTCP(bytes.NewReader([]byte{0}), nil); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("short header err = %v", err)
	}
}

func TestReadTCPReusesBuffer(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTCP(&buf, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	scratch := make([]byte, 0, 64)
	got, err := ReadTCP(&buf, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &scratch[:1][0] {
		t.Error("buffer with capacity was not reused")
	}
}

func TestExchangeTCP(t *testing.T) {
	// Simulate a server on the other end of a pipe.
	type rw struct {
		io.Reader
		io.Writer
	}
	cr, sw := io.Pipe()
	sr, cw := io.Pipe()
	client := rw{cr, cw}
	server := rw{sr, sw}

	go func() {
		raw, err := ReadTCP(server, nil)
		if err != nil {
			return
		}
		q, err := Decode(raw)
		if err != nil {
			return
		}
		resp := NewResponse(q, RCodeNoError)
		rr, _ := MakeTXT("hostname.bind", ClassCHAOS, 0, "ns1.ams.k.ripe.net")
		resp.Answers = append(resp.Answers, rr)
		pkt, _ := resp.Pack()
		WriteTCP(server, pkt)
	}()

	resp, err := ExchangeTCP(client, NewQuery(5, "hostname.bind", TypeTXT, ClassCHAOS))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.ID != 5 || len(resp.Answers) != 1 {
		t.Errorf("resp = %+v", resp)
	}
}

// Property: WriteTCP/ReadTCP round-trips arbitrary payloads up to 64 KiB.
func TestTCPFrameProperty(t *testing.T) {
	f := func(payload []byte) bool {
		if len(payload) > 0xFFFF {
			payload = payload[:0xFFFF]
		}
		var buf bytes.Buffer
		if err := WriteTCP(&buf, payload); err != nil {
			return false
		}
		got, err := ReadTCP(&buf, nil)
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
