package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// DNS over TCP frames each message with a 16-bit big-endian length prefix
// (RFC 1035 §4.2.2). TCP matters to this system because it is the fallback
// path response-rate limiting leaves open: suppressed answers "slip" back
// as truncated (TC=1) responses, telling genuine clients to retry over TCP
// where source addresses cannot be spoofed (§2.3 of the paper, and the
// connection-oriented-DNS defense it cites).

// ErrFrameTooLarge is returned when a message exceeds the 16-bit length.
var ErrFrameTooLarge = errors.New("dnswire: message exceeds 65535 bytes")

// WriteTCP writes one length-prefixed DNS message to w.
func WriteTCP(w io.Writer, msg []byte) error {
	if len(msg) > 0xFFFF {
		return ErrFrameTooLarge
	}
	var hdr [2]byte
	binary.BigEndian.PutUint16(hdr[:], uint16(len(msg)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("dnswire: tcp length: %w", err)
	}
	if _, err := w.Write(msg); err != nil {
		return fmt.Errorf("dnswire: tcp payload: %w", err)
	}
	return nil
}

// ReadTCP reads one length-prefixed DNS message from r. The buffer is
// reused when it has capacity.
func ReadTCP(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint16(hdr[:]))
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("dnswire: tcp body: %w", err)
	}
	return buf, nil
}

// ExchangeTCP writes a query and reads one response over an established
// stream (helper for clients).
func ExchangeTCP(rw io.ReadWriter, query *Message) (*Message, error) {
	pkt, err := query.Pack()
	if err != nil {
		return nil, err
	}
	if err := WriteTCP(rw, pkt); err != nil {
		return nil, err
	}
	raw, err := ReadTCP(rw, nil)
	if err != nil {
		return nil, err
	}
	return Decode(raw)
}
