package dnswire

import (
	"bytes"
	"fmt"
	"testing"
)

// sectionsEqual compares two decoded messages field by field (RData by
// content — the fast path aliases its arena, the legacy path copies).
func sectionsEqual(t *testing.T, legacy, fast *Message) {
	t.Helper()
	if legacy.Header != fast.Header {
		t.Fatalf("header mismatch: legacy %+v fast %+v", legacy.Header, fast.Header)
	}
	if len(legacy.Questions) != len(fast.Questions) {
		t.Fatalf("question count: legacy %d fast %d", len(legacy.Questions), len(fast.Questions))
	}
	for i := range legacy.Questions {
		if legacy.Questions[i] != fast.Questions[i] {
			t.Fatalf("question %d: legacy %+v fast %+v", i, legacy.Questions[i], fast.Questions[i])
		}
	}
	for si, sec := range []struct {
		name         string
		legacy, fast []RR
	}{
		{"answer", legacy.Answers, fast.Answers},
		{"authority", legacy.Authority, fast.Authority},
		{"additional", legacy.Additional, fast.Additional},
	} {
		if len(sec.legacy) != len(sec.fast) {
			t.Fatalf("%s count: legacy %d fast %d", sec.name, len(sec.legacy), len(sec.fast))
		}
		for i := range sec.legacy {
			l, f := sec.legacy[i], sec.fast[i]
			if l.Name != f.Name || l.Type != f.Type || l.Class != f.Class || l.TTL != f.TTL {
				t.Fatalf("%s %d fields: legacy %+v fast %+v", sec.name, i, l, f)
			}
			if !bytes.Equal(l.RData, f.RData) {
				t.Fatalf("%s %d rdata: legacy %x fast %x (section %d)", sec.name, i, l.RData, f.RData, si)
			}
		}
	}
}

// FuzzDecodeIntoMatchesDecode holds DecodeInto to the legacy Decode
// contract: identical accept/reject decisions, identical decoded fields,
// and a byte-identical re-encode whenever the legacy decode re-encodes.
func FuzzDecodeIntoMatchesDecode(f *testing.F) {
	q := NewQuery(1, "www.336901.com", TypeA, ClassINET)
	pkt, _ := q.Pack()
	f.Add(pkt)
	resp := NewResponse(q, RCodeNoError)
	txt, _ := MakeTXT("hostname.bind", ClassCHAOS, 0, "ns1.ams.k.ripe.net")
	resp.Answers = append(resp.Answers, txt)
	rpkt, _ := resp.Pack()
	f.Add(rpkt)
	f.Add([]byte{0xC0, 0x00})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	mixed, _ := NewQuery(2, "WwW.ExAmPlE.CoM", TypeAAAA, ClassINET).Pack()
	f.Add(mixed)

	var reused Message // deliberately shared across fuzz iterations
	f.Fuzz(func(t *testing.T, data []byte) {
		legacy, legacyErr := Decode(data)
		fastErr := DecodeInto(data, &reused)
		if (legacyErr == nil) != (fastErr == nil) {
			t.Fatalf("accept/reject mismatch: legacy err %v, fast err %v", legacyErr, fastErr)
		}
		if legacyErr != nil {
			return
		}
		sectionsEqual(t, legacy, &reused)
		legacyOut, legacyPackErr := legacy.Pack()
		fastOut, fastPackErr := reused.Pack()
		if (legacyPackErr == nil) != (fastPackErr == nil) {
			t.Fatalf("re-encode mismatch: legacy err %v, fast err %v", legacyPackErr, fastPackErr)
		}
		if legacyPackErr == nil && !bytes.Equal(legacyOut, fastOut) {
			t.Fatalf("re-encode bytes differ:\nlegacy %x\nfast   %x", legacyOut, fastOut)
		}
	})
}

// TestDecodeIntoScratchReuse decodes alternating packets through one
// Message and re-checks the first decode afterwards: arena and cache reuse
// must not let a later packet corrupt an earlier decode's expectations.
func TestDecodeIntoScratchReuse(t *testing.T) {
	resp := NewResponse(NewQuery(9, "hostname.bind", TypeTXT, ClassCHAOS), RCodeNoError)
	txt, err := MakeTXT("hostname.bind", ClassCHAOS, 0, "ns1.ams.k.ripe.net")
	if err != nil {
		t.Fatal(err)
	}
	resp.Answers = append(resp.Answers, txt)
	pktA, err := resp.Pack()
	if err != nil {
		t.Fatal(err)
	}
	pktB, err := NewQuery(10, "www.336901.com", TypeA, ClassINET).Pack()
	if err != nil {
		t.Fatal(err)
	}

	var m Message
	for i := 0; i < 10; i++ {
		pkt := pktA
		if i%2 == 1 {
			pkt = pktB
		}
		if err := DecodeInto(pkt, &m); err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		legacy, err := Decode(pkt)
		if err != nil {
			t.Fatal(err)
		}
		sectionsEqual(t, legacy, &m)
	}
}

// TestDecodeIntoSentinels checks the fast path returns the package's
// sentinel errors for the canonical malformed inputs.
func TestDecodeIntoSentinels(t *testing.T) {
	var m Message
	if err := DecodeInto(make([]byte, HeaderLen-1), &m); err != ErrTruncatedMessage {
		t.Fatalf("short header: got %v, want ErrTruncatedMessage", err)
	}
	pkt, err := NewQuery(3, "example.com", TypeA, ClassINET).Pack()
	if err != nil {
		t.Fatal(err)
	}
	if err := DecodeInto(append(pkt, 0xFF), &m); err != ErrTrailingGarbage {
		t.Fatalf("trailing byte: got %v, want ErrTrailingGarbage", err)
	}
	bogus := append([]byte(nil), pkt...)
	bogus[6] = 0xFF // claim 65280+ answers in a tiny packet
	bogus[7] = 0x00
	if err := DecodeInto(bogus, &m); err != ErrTooManyRecords {
		t.Fatalf("implausible counts: got %v, want ErrTooManyRecords", err)
	}
}

// TestPutNameMatchesAppendName drives putName across the presentation-name
// space: every valid name encodes byte-identically to appendName, every
// name appendName rejects is rejected too.
func TestPutNameMatchesAppendName(t *testing.T) {
	long := ""
	for i := 0; i < 128; i++ {
		long += "ab."
	}
	names := []string{
		"", ".", "www.example.com", "www.example.com.", "WwW.ExAmPlE.CoM",
		"hostname.bind", "a", "a.b.c.d.e.f.g", "..", "a..b", ".a", "a.",
		string(bytes.Repeat([]byte{'x'}, 64)), // label too long
		string(bytes.Repeat([]byte{'x'}, 63)),
		long,          // name too long
		long[:252],    // 63 labels of "ab." = 252 chars -> wire 253, fits
		"a.." + long,  // multiple defects
		"xn--n28h.de", // IDNA stays opaque bytes
	}
	for _, name := range names {
		want, wantErr := appendName(nil, name, nil)
		got, gotErr := putName(growCap(nil, len(name)+2), name)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%q: appendName err %v, putName err %v", name, wantErr, gotErr)
		}
		if wantErr == nil && !bytes.Equal(want, got) {
			t.Fatalf("%q: appendName %x, putName %x", name, want, got)
		}
	}
}

// responseShapes builds every response the server emits, as (query, legacy
// response) pairs; used for tail-splicing equivalence and the benches.
func responseShapes(t testing.TB) []struct {
	name  string
	query *Message
	resp  *Message
} {
	t.Helper()
	build := func(name string, q *Message, f func(*Message)) struct {
		name  string
		query *Message
		resp  *Message
	} {
		r := NewResponse(q, RCodeNoError)
		f(r)
		return struct {
			name  string
			query *Message
			resp  *Message
		}{name, q, r}
	}
	identity := build("chaos-txt", NewQuery(1, "hostname.bind", TypeTXT, ClassCHAOS), func(r *Message) {
		r.Header.Authoritative = true
		txt, err := MakeTXT("hostname.bind", ClassCHAOS, 0, "ns1.ams.k.ripe.net")
		if err != nil {
			t.Fatal(err)
		}
		r.Answers = append(r.Answers, txt)
	})
	priming := build("priming", NewQuery(2, "", TypeNS, ClassINET), func(r *Message) {
		r.Header.Authoritative = true
		for c := byte('a'); c <= 'm'; c++ {
			ns, err := MakeNS("", 3600000, fmt.Sprintf("%c.root-servers.net", c))
			if err != nil {
				t.Fatal(err)
			}
			r.Answers = append(r.Answers, ns)
		}
	})
	nx := build("nxdomain", NewQuery(3, "www.336901.com", TypeA, ClassINET), func(r *Message) {
		r.Header.RCode = RCodeNXDomain
		soa, err := MakeSOA("", 86400, SOAData{
			MName: "a.root-servers.net", RName: "nstld.verisign-grs.com",
			Serial: 2015113001, Refresh: 1800, Retry: 900, Expire: 604800, Minimum: 86400,
		})
		if err != nil {
			t.Fatal(err)
		}
		r.Authority = append(r.Authority, soa)
	})
	refused := build("refused", NewQuery(4, "whatever.example", TypeMX, ClassINET), func(r *Message) {
		r.Header.RCode = RCodeRefused
	})
	slip := build("rrl-slip", NewQuery(5, "www.336901.com", TypeA, ClassINET), func(r *Message) {
		r.Header.Truncated = true
	})
	return []struct {
		name  string
		query *Message
		resp  *Message
	}{identity, priming, nx, refused, slip}
}

// TestAppendResponseMatchesEncode proves the tail-splicing encode emits
// byte-identical packets to NewResponse+Encode for every response shape the
// server produces: the tail is carved off a legacy encoding once, then
// replayed through AppendResponse against a fresh decode of the query.
func TestAppendResponseMatchesEncode(t *testing.T) {
	for _, shape := range responseShapes(t) {
		t.Run(shape.name, func(t *testing.T) {
			want, err := shape.resp.Pack()
			if err != nil {
				t.Fatal(err)
			}
			nameLen, err := EncodedNameLen(shape.query.Questions[0].Name)
			if err != nil {
				t.Fatal(err)
			}
			tail := want[HeaderLen+nameLen+4:]

			qpkt, err := shape.query.Pack()
			if err != nil {
				t.Fatal(err)
			}
			var q Message
			if err := DecodeInto(qpkt, &q); err != nil {
				t.Fatal(err)
			}
			h := shape.resp.Header
			got, err := AppendResponse(nil, &q, h.RCode, h.Authoritative, h.Truncated,
				tail, len(shape.resp.Answers), len(shape.resp.Authority), len(shape.resp.Additional))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("packet mismatch:\nlegacy %x\nfast   %x", want, got)
			}
		})
	}
}

// TestFastPathZeroAllocs is the codec half of the PR's 0 allocs/op claim:
// once scratch is warm, neither DecodeInto nor AppendResponse touches the
// heap.
func TestFastPathZeroAllocs(t *testing.T) {
	pkt, err := NewQuery(7, "www.336901.com", TypeA, ClassINET).Pack()
	if err != nil {
		t.Fatal(err)
	}
	var m Message
	if err := DecodeInto(pkt, &m); err != nil { // warm scratch
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := DecodeInto(pkt, &m); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("DecodeInto allocates %.1f allocs/op, want 0", n)
	}

	tail := []byte{0xC0, 0x0C, 0, 1, 0, 1, 0, 0, 0, 0, 0, 4, 127, 0, 0, 1}
	out := make([]byte, 0, 512)
	if n := testing.AllocsPerRun(200, func() {
		var err error
		out, err = AppendResponse(out[:0], &m, RCodeNoError, true, false, tail, 1, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("AppendResponse allocates %.1f allocs/op, want 0", n)
	}
}

// TestInternCacheBounded floods the name cache with unique names and checks
// the wholesale-clear bound holds.
func TestInternCacheBounded(t *testing.T) {
	var m Message
	for i := 0; i < 3*maxInternedNames; i++ {
		pkt, err := NewQuery(uint16(i), fmt.Sprintf("q%d.example", i), TypeA, ClassINET).Pack()
		if err != nil {
			t.Fatal(err)
		}
		if err := DecodeInto(pkt, &m); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(m.scratch.names); n > maxInternedNames {
		t.Fatalf("name cache grew to %d entries, cap is %d", n, maxInternedNames)
	}
}
