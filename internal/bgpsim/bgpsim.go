// Package bgpsim computes anycast catchments by propagating BGP routes over
// an AS-level topology with Gao-Rexford (valley-free) policies.
//
// An anycast service announces one prefix from several sites, each homed in
// a host AS. Routing then associates every AS with one site — the site's
// catchment (§2.1 of the paper). Sites can be *global* (announced normally)
// or *local* (announced with NO_EXPORT-style scoping so only the host's
// immediate neighbors learn the route, as several root letters do for their
// local sites, Table 2). Withdrawing a site's announcement shrinks its
// catchment to nothing and shifts its ASes to other sites — the "waterbed"
// behaviour the paper observes under stress (§2.2, §3.4).
//
// Route selection follows standard policy preferences: customer-learned
// routes over peer-learned over provider-learned, then shorter AS paths,
// then a deterministic per-AS tie-break (a hash standing in for the IGP
// costs and router IDs real networks break ties on, so tied sites split
// the population instead of one site absorbing every tie).
package bgpsim

import (
	"fmt"

	"github.com/rootevent/anycastddos/internal/topo"
)

// RelClass records how an AS learned a route, in preference order.
type RelClass uint8

// Route classes, ordered from most to least preferred.
const (
	FromSelf     RelClass = iota // the AS hosts the site
	FromCustomer                 // learned from a customer
	FromPeer                     // learned from a settlement-free peer
	FromProvider                 // learned from a provider
)

// String returns the class name.
func (c RelClass) String() string {
	switch c {
	case FromSelf:
		return "self"
	case FromCustomer:
		return "customer"
	case FromPeer:
		return "peer"
	case FromProvider:
		return "provider"
	default:
		return fmt.Sprintf("RelClass(%d)", uint8(c))
	}
}

// NoSite marks the absence of a route.
const NoSite = -1

// Origin is one anycast site announcement.
type Origin struct {
	Site  int      // caller-defined site identifier (>= 0)
	Host  topo.ASN // AS hosting the site
	Local bool     // NO_EXPORT scoping: only the host's direct neighbors learn the route
}

// Route is an AS's best path to the anycast prefix.
type Route struct {
	Site    int      // chosen site, or NoSite
	PathLen uint8    // AS-path length from the origin
	Class   RelClass // how the route was learned
	NextHop topo.ASN // neighbor the route was learned from (self for origins)
	// ViaDefault marks traffic that reaches the prefix with no BGP route
	// of its own: the AS simply defaults packets to a transit provider.
	// This is how single-homed networks behind an ISP holding only a
	// NO_EXPORT route still reach the service in practice.
	ViaDefault bool
	origin     int  // index of the announcing uplink in the origins slice
	noExport   bool // route must not be re-advertised
}

// Valid reports whether the route reaches any site.
func (r Route) Valid() bool { return r.Site != NoSite }

// nextLen increments a path length, saturating instead of wrapping so that
// pathological graphs cannot cycle through uint8 overflow.
//
//repolint:hot
func nextLen(l uint8) uint8 {
	if l == 255 {
		return 255
	}
	return l + 1
}

// mix64 is the splitmix64 finalizer, used for per-AS tie ranks.
//
//repolint:hot
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// tieRank orders equally-preferred routes at one AS. Real routers break
// class/path-length ties on IGP cost and router IDs, which vary per
// network; a per-(AS, uplink) hash reproduces that: each AS has its own
// stable preference among tied announcements, so tied sites split the
// population — and a site announced through k uplinks wins a tie against a
// single-uplink site with probability k/(k+1), the structural advantage of
// heavily meshed IX sites like K-AMS.
//
//repolint:hot
func tieRank(asn topo.ASN, origin int) uint64 {
	return mix64(uint64(asn)<<20 ^ uint64(uint32(origin))*0x9E3779B9)
}

// better reports whether candidate a beats incumbent b at the given AS
// under BGP policy preferences with deterministic per-AS tie-breaking.
//
//repolint:hot
func better(asn topo.ASN, a, b Route) bool {
	if !b.Valid() {
		return a.Valid()
	}
	if !a.Valid() {
		return false
	}
	if a.Class != b.Class {
		return a.Class < b.Class
	}
	if a.PathLen != b.PathLen {
		return a.PathLen < b.PathLen
	}
	if a.origin == b.origin {
		return false
	}
	ra, rb := tieRank(asn, a.origin), tieRank(asn, b.origin)
	if ra != rb {
		return ra < rb
	}
	return a.origin < b.origin
}

// Table holds every AS's best route for one anycast prefix.
type Table struct {
	Routes []Route // indexed by ASN
}

// SiteOf returns the site serving the given AS, or NoSite.
//
//repolint:hot
func (t *Table) SiteOf(a topo.ASN) int { return t.Routes[a].Site }

// CatchmentSizes returns, for each site index < nSites, the number of ASes
// routed to it.
func (t *Table) CatchmentSizes(nSites int) []int {
	return t.CatchmentSizesInto(make([]int, nSites))
}

// CatchmentSizesInto is CatchmentSizes with a caller-supplied buffer: sizes
// is zeroed, filled per site index < len(sizes), and returned, so analysis
// loops can reuse one buffer across epochs.
//
//repolint:hot
func (t *Table) CatchmentSizesInto(sizes []int) []int {
	for i := range sizes {
		sizes[i] = 0
	}
	for _, r := range t.Routes {
		if r.Site >= 0 && r.Site < len(sizes) {
			sizes[r.Site]++
		}
	}
	return sizes
}

// Compute propagates the origins' announcements across the graph and
// returns the resulting routing table. active reports whether each origins
// entry is currently announced; nil means all are active.
//
// This is the reference implementation: a from-scratch full sweep with
// per-call state. Engines recomputing routes per epoch should hold a
// Computer, whose incremental fixpoint produces byte-identical tables
// while allocating nothing beyond the result.
//
// The computation is a synchronous path-vector iteration: each round, every
// AS selects its best route among its own origins and its neighbors'
// previous-round routes, under valley-free export rules (self/customer
// routes go everywhere; peer/provider routes only to customers; NO_EXPORT
// routes are never re-advertised). Iterating to a fixpoint — which
// Gao-Rexford preferences guarantee — yields a *forwarding-consistent*
// table: every AS's NextHop actually holds the route it advertised, so
// traces and selections always agree.
func Compute(g *topo.Graph, origins []Origin, active []bool) *Table {
	n := g.N()
	cur := make([]Route, n)
	next := make([]Route, n)
	for i := range cur {
		cur[i] = Route{Site: NoSite}
		next[i] = Route{Site: NoSite}
	}

	// Per-AS origin seeds and the NO_EXPORT routes local origins spray to
	// their direct customers/peers (both constant across rounds).
	seeds := make(map[topo.ASN][]Route)
	localAdverts := make(map[topo.ASN][]Route)
	for i, o := range origins {
		if active != nil && !active[i] {
			continue
		}
		seeds[o.Host] = append(seeds[o.Host], Route{
			Site: o.Site, PathLen: 0, Class: FromSelf, NextHop: o.Host, origin: i, noExport: o.Local,
		})
		if o.Local {
			// Local-site announcements (NOPEER + NO_EXPORT) reach only
			// the host ISP's customers: the node serves the host's own
			// cone. Advertising to peers or providers would let the
			// tiny site win route ties across the region and siphon
			// traffic it cannot serve.
			host := g.AS(o.Host)
			for _, c := range host.Customers {
				localAdverts[c] = append(localAdverts[c], Route{
					Site: o.Site, PathLen: 1, Class: FromProvider, NextHop: o.Host, origin: i, noExport: true,
				})
			}
		}
	}

	const maxRounds = 128
	for round := 0; round < maxRounds; round++ {
		changed := false
		for asn := 0; asn < n; asn++ {
			a := topo.ASN(asn)
			best := Route{Site: NoSite}
			consider := func(r Route) {
				if better(a, r, best) {
					best = r
				}
			}
			for _, r := range seeds[a] {
				consider(r)
			}
			for _, r := range localAdverts[a] {
				consider(r)
			}
			node := g.AS(a)
			// Valley-free export rules, from the receiver's perspective:
			// a customer or peer advertises only its self/customer
			// routes; a provider advertises its full (non-NO_EXPORT)
			// table downward.
			for _, c := range node.Customers {
				r := cur[c]
				if !r.Valid() || r.noExport || r.Class > FromCustomer {
					continue
				}
				consider(Route{Site: r.Site, PathLen: nextLen(r.PathLen), Class: FromCustomer, NextHop: c, origin: r.origin})
			}
			for _, p := range node.Peers {
				r := cur[p]
				if !r.Valid() || r.noExport || r.Class > FromCustomer {
					continue
				}
				consider(Route{Site: r.Site, PathLen: nextLen(r.PathLen), Class: FromPeer, NextHop: p, origin: r.origin})
			}
			for _, p := range node.Providers {
				r := cur[p]
				if !r.Valid() || r.noExport {
					continue
				}
				consider(Route{Site: r.Site, PathLen: nextLen(r.PathLen), Class: FromProvider, NextHop: p, origin: r.origin})
			}
			next[asn] = best
			if best != cur[asn] {
				changed = true
			}
		}
		cur, next = next, cur
		if !changed {
			break
		}
	}
	resolveDefaultsInto(g, cur, make([]uint8, len(cur)))
	return &Table{Routes: cur}
}

// resolveDefaultsInto fills in forwarding for ASes without a BGP route:
// edge networks run default routes toward a transit provider, so their
// packets climb the hierarchy until they hit an AS that does hold a route
// (or a default-free tier-1 without one, where they die). The provider
// choice is the same per-AS deterministic hash as route tie-breaking.
// state is per-AS visit scratch and must arrive zeroed.
func resolveDefaultsInto(g *topo.Graph, routes []Route, state []uint8) {
	const unresolved, resolving, done = 0, 1, 2
	var fill func(asn topo.ASN) Route
	fill = func(asn topo.ASN) Route {
		if state[asn] == done || routes[asn].Valid() {
			state[asn] = done
			return routes[asn]
		}
		if state[asn] == resolving {
			return Route{Site: NoSite} // defensive; provider edges are acyclic
		}
		state[asn] = resolving
		var best Route = Route{Site: NoSite}
		var bestHop topo.ASN
		bestRank := ^uint64(0)
		for _, p := range g.AS(asn).Providers {
			if r := fill(p); r.Valid() {
				if rank := mix64(uint64(asn)<<20 ^ uint64(p)); rank < bestRank {
					bestRank = rank
					best = r
					bestHop = p
				}
			}
		}
		if best.Valid() {
			routes[asn] = Route{
				Site: best.Site, PathLen: nextLen(best.PathLen), Class: FromProvider,
				NextHop: bestHop, ViaDefault: true, origin: best.origin, noExport: true,
			}
		}
		state[asn] = done
		return routes[asn]
	}
	for asn := range routes {
		fill(topo.ASN(asn))
	}
}

// Change records one AS whose best site changed between two tables.
type Change struct {
	ASN  topo.ASN
	From int // previous site or NoSite
	To   int // new site or NoSite
}

// Diff returns the set of ASes whose selected site differs between two
// tables. The result drives both site-flip accounting and the BGPmon
// collector view.
func Diff(old, new *Table) []Change {
	return AppendDiff(nil, old, new)
}

// AppendDiff is Diff with a caller-supplied buffer: changes are appended to
// dst (which may be nil) and the extended slice returned, so per-epoch
// diffing inside the engine reuses one buffer instead of allocating per
// call.
func AppendDiff(dst []Change, old, new *Table) []Change {
	for i := range new.Routes {
		if old.Routes[i].Site != new.Routes[i].Site {
			dst = append(dst, Change{ASN: topo.ASN(i), From: old.Routes[i].Site, To: new.Routes[i].Site})
		}
	}
	return dst
}

// Trace reconstructs the AS-level forwarding path from an AS toward the
// anycast prefix by following NextHop links — the simulator's analog of a
// traceroute, used to cross-validate CHAOS-based catchment mapping the way
// Fan et al. did for the paper's methodology (§2.1). It returns the
// traversed ASes (starting at from) and the site reached, or NoSite when
// the AS has no route or forwarding is inconsistent (a loop or a hop
// without a route).
func (t *Table) Trace(from topo.ASN, maxHops int) (path []topo.ASN, site int) {
	if maxHops <= 0 {
		maxHops = 64
	}
	seen := make(map[topo.ASN]bool, 8)
	cur := from
	for hops := 0; hops <= maxHops; hops++ {
		path = append(path, cur)
		r := t.Routes[cur]
		if !r.Valid() {
			return path, NoSite
		}
		if r.Class == FromSelf || r.NextHop == cur {
			return path, r.Site
		}
		if seen[cur] {
			return path, NoSite // forwarding loop
		}
		seen[cur] = true
		cur = r.NextHop
	}
	return path, NoSite
}
