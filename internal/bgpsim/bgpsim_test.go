package bgpsim

import (
	"testing"
	"testing/quick"

	"github.com/rootevent/anycastddos/internal/topo"
)

// tinyGraph builds a hand-checkable topology:
//
//	T1a(0) ===peer=== T1b(1)
//	  |                 |
//	T2a(2)            T2b(3)   (T2a peers T2b)
//	  |                 |
//	S1(4)             S2(5)
//	  |
//	S3(6)  -- S3 is a customer of S1? No: stubs don't have customers.
//
// We wire: 0-1 peers; 2 customer of 0; 3 customer of 1; 2-3 peers;
// 4 customer of 2; 5 customer of 3; 6 customer of 2.
func tinyGraph() *topo.Graph {
	g := &topo.Graph{ASes: make([]topo.AS, 7)}
	for i := range g.ASes {
		g.ASes[i].ASN = topo.ASN(i)
	}
	peer := func(a, b topo.ASN) {
		g.ASes[a].Peers = append(g.ASes[a].Peers, b)
		g.ASes[b].Peers = append(g.ASes[b].Peers, a)
	}
	link := func(provider, customer topo.ASN) {
		g.ASes[provider].Customers = append(g.ASes[provider].Customers, customer)
		g.ASes[customer].Providers = append(g.ASes[customer].Providers, provider)
	}
	g.ASes[0].Tier, g.ASes[1].Tier = topo.Tier1, topo.Tier1
	g.ASes[2].Tier, g.ASes[3].Tier = topo.Tier2, topo.Tier2
	peer(0, 1)
	link(0, 2)
	link(1, 3)
	peer(2, 3)
	link(2, 4)
	link(3, 5)
	link(2, 6)
	for i := 4; i < 7; i++ {
		g.ASes[i].Tier = topo.Stub
	}
	return g
}

func TestSingleOriginReachesEveryone(t *testing.T) {
	g := tinyGraph()
	tb := Compute(g, []Origin{{Site: 0, Host: 4}}, nil)
	for asn := 0; asn < g.N(); asn++ {
		if tb.SiteOf(topo.ASN(asn)) != 0 {
			t.Errorf("AS%d has no route (site=%d)", asn, tb.SiteOf(topo.ASN(asn)))
		}
	}
	// Route classes: AS4 self, AS2 customer, AS0 customer, AS1 peer (via
	// 0) or provider? AS1 hears from peer 0 (customer route at 0 ->
	// exported to peers) => FromPeer.
	if tb.Routes[4].Class != FromSelf {
		t.Errorf("AS4 class = %v", tb.Routes[4].Class)
	}
	if tb.Routes[2].Class != FromCustomer || tb.Routes[0].Class != FromCustomer {
		t.Errorf("upstream classes = %v, %v", tb.Routes[2].Class, tb.Routes[0].Class)
	}
	if tb.Routes[1].Class != FromPeer {
		t.Errorf("AS1 class = %v, want peer", tb.Routes[1].Class)
	}
	// AS5 must reach via its provider 3 (which heard from peer 2 or via 1).
	if tb.Routes[5].Class != FromProvider {
		t.Errorf("AS5 class = %v, want provider", tb.Routes[5].Class)
	}
}

func TestValleyFreePeerRoutesNotReExported(t *testing.T) {
	// Origin at stub 5 (customer of 3). AS2 hears via peer 3 (peer route)
	// and via provider 0<-peer 1<-customer 3... wait: 1 hears customer
	// route from 3, exports to peer 0, 0 exports provider-route down to 2.
	// Both are valid paths; customer/peer/provider preference decides.
	g := tinyGraph()
	tb := Compute(g, []Origin{{Site: 0, Host: 5}}, nil)
	// AS2: peer route via 3 (class peer, len 2) vs provider route via 0
	// (class provider). Peer preferred.
	if tb.Routes[2].Class != FromPeer {
		t.Errorf("AS2 class = %v, want peer", tb.Routes[2].Class)
	}
	// AS4 (customer of 2) must still get a route: 2's peer route CAN go
	// down to customers (valley-free allows peer->customer export).
	if !tb.Routes[4].Valid() {
		t.Error("AS4 unreachable; peer routes must descend to customers")
	}
	if tb.Routes[4].Class != FromProvider {
		t.Errorf("AS4 class = %v, want provider", tb.Routes[4].Class)
	}
}

func TestTwoSitesSplitCatchment(t *testing.T) {
	g := tinyGraph()
	origins := []Origin{{Site: 0, Host: 4}, {Site: 1, Host: 5}}
	tb := Compute(g, origins, nil)
	// Each stub prefers its own side.
	if tb.SiteOf(4) != 0 || tb.SiteOf(6) != 0 || tb.SiteOf(2) != 0 || tb.SiteOf(0) != 0 {
		t.Errorf("left side catchment: %v %v %v %v", tb.SiteOf(4), tb.SiteOf(6), tb.SiteOf(2), tb.SiteOf(0))
	}
	if tb.SiteOf(5) != 1 || tb.SiteOf(3) != 1 || tb.SiteOf(1) != 1 {
		t.Errorf("right side catchment: %v %v %v", tb.SiteOf(5), tb.SiteOf(3), tb.SiteOf(1))
	}
	sizes := tb.CatchmentSizes(2)
	if sizes[0]+sizes[1] != g.N() {
		t.Errorf("catchments %v do not cover the graph", sizes)
	}
}

func TestWithdrawShiftsCatchment(t *testing.T) {
	g := tinyGraph()
	origins := []Origin{{Site: 0, Host: 4}, {Site: 1, Host: 5}}
	before := Compute(g, origins, nil)
	after := Compute(g, origins, []bool{false, true})
	// Everyone must now use site 1.
	for asn := 0; asn < g.N(); asn++ {
		if after.SiteOf(topo.ASN(asn)) != 1 {
			t.Errorf("AS%d site = %d after withdrawal", asn, after.SiteOf(topo.ASN(asn)))
		}
	}
	changes := Diff(before, after)
	// The left side (0,2,4,6) flipped.
	if len(changes) != 4 {
		t.Errorf("changes = %v, want 4 flips", changes)
	}
	for _, c := range changes {
		if c.From != 0 || c.To != 1 {
			t.Errorf("change %+v, want 0->1", c)
		}
	}
}

func TestAllWithdrawn(t *testing.T) {
	g := tinyGraph()
	origins := []Origin{{Site: 0, Host: 4}}
	tb := Compute(g, origins, []bool{false})
	for asn := 0; asn < g.N(); asn++ {
		if tb.Routes[asn].Valid() {
			t.Errorf("AS%d has a route with no active origins", asn)
		}
	}
}

func TestLocalSiteScopedToNeighbors(t *testing.T) {
	g := tinyGraph()
	// Local site at AS2; global site at AS5. Local announcements reach
	// only AS2's customers (4, 6) — neither its peer AS3 nor its
	// provider AS0, where the NO_EXPORT route would shadow or siphon
	// the global service.
	origins := []Origin{{Site: 0, Host: 2, Local: true}, {Site: 1, Host: 5}}
	tb := Compute(g, origins, nil)
	wantLocal := map[topo.ASN]bool{2: true, 4: true, 6: true}
	for asn := 0; asn < g.N(); asn++ {
		got := tb.SiteOf(topo.ASN(asn))
		if wantLocal[topo.ASN(asn)] {
			if got != 0 {
				t.Errorf("neighbor AS%d of local site got site %d, want 0", asn, got)
			}
		} else if got != 1 {
			t.Errorf("AS%d got site %d, want 1 (local must not leak/win there)", asn, got)
		}
	}
}

func TestLocalOnlyScoping(t *testing.T) {
	g := tinyGraph()
	origins := []Origin{{Site: 0, Host: 2, Local: true}}
	tb := Compute(g, origins, nil)
	if !tb.Routes[4].Valid() || !tb.Routes[6].Valid() {
		t.Error("the host's customers must learn the local route")
	}
	// Neither peers nor providers receive local announcements, and the
	// default-free tier-1s have nothing to default to — everyone outside
	// the host's cone stays dark.
	for _, asn := range []topo.ASN{0, 1, 3, 5} {
		if tb.Routes[asn].Valid() {
			t.Errorf("AS%d reached a customers-only local site", asn)
		}
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	// Two sites equidistant from a client: the per-AS tie-break must pick
	// one of them, deterministically across recomputations.
	g := tinyGraph()
	origins := []Origin{{Site: 7, Host: 4}, {Site: 3, Host: 6}}
	tb := Compute(g, origins, nil)
	got := tb.SiteOf(2)
	if got != 3 && got != 7 {
		t.Fatalf("AS2 site = %d, want one of the tied sites", got)
	}
	for i := 0; i < 5; i++ {
		if again := Compute(g, origins, nil).SiteOf(2); again != got {
			t.Fatalf("tie-break unstable: %d then %d", got, again)
		}
	}
}

func TestTieBreakSplitsPopulation(t *testing.T) {
	// Across a large graph, two symmetric sites should split tied ASes
	// rather than one site absorbing everything.
	g, err := topo.Generate(topo.Config{Tier1s: 6, Tier2s: 40, Stubs: 400, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	stubs := g.StubASNs()
	origins := []Origin{{Site: 0, Host: stubs[5]}, {Site: 1, Host: stubs[6]}}
	tb := Compute(g, origins, nil)
	sizes := tb.CatchmentSizes(2)
	if sizes[0] == 0 || sizes[1] == 0 {
		t.Fatalf("catchments = %v; per-AS tie-break should split ties", sizes)
	}
}

func TestComputeOnGeneratedGraphTotality(t *testing.T) {
	g, err := topo.Generate(topo.Config{Tier1s: 5, Tier2s: 40, Stubs: 400, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	stubs := g.StubASNs()
	origins := []Origin{
		{Site: 0, Host: stubs[0]},
		{Site: 1, Host: stubs[100]},
		{Site: 2, Host: stubs[200]},
	}
	tb := Compute(g, origins, nil)
	sizes := tb.CatchmentSizes(3)
	total := 0
	for s, n := range sizes {
		if n == 0 {
			t.Errorf("site %d has empty catchment", s)
		}
		total += n
	}
	if total != g.N() {
		t.Errorf("catchments cover %d of %d ASes (every AS must be served while any global site is up)", total, g.N())
	}
}

// Property: catchment totality and class sanity hold for random origin
// placements on a generated graph.
func TestCatchmentTotalityProperty(t *testing.T) {
	g, err := topo.Generate(topo.Config{Tier1s: 4, Tier2s: 25, Stubs: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	f := func(hosts []uint16, localBits uint8) bool {
		if len(hosts) == 0 {
			return true
		}
		if len(hosts) > 8 {
			hosts = hosts[:8]
		}
		origins := make([]Origin, len(hosts))
		allGlobal := true
		anyGlobal := false
		for i, h := range hosts {
			origins[i] = Origin{
				Site:  i,
				Host:  topo.ASN(int(h) % g.N()),
				Local: localBits&(1<<i) != 0,
			}
			if origins[i].Local {
				allGlobal = false
			} else {
				anyGlobal = true
			}
		}
		tb := Compute(g, origins, nil)
		served := 0
		for asn := range tb.Routes {
			r := tb.Routes[asn]
			if r.Valid() {
				served++
				if r.Site < 0 || r.Site >= len(origins) {
					return false
				}
			}
		}
		// With only global sites, defaults guarantee totality. With
		// local origins in the mix, a local-site host on the only path
		// between a global origin and the core swallows the global
		// route (its NO_EXPORT best cannot be re-advertised), so
		// totality can genuinely fail; we still require someone served.
		if allGlobal && served != g.N() {
			return false
		}
		if anyGlobal && served == 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Diff is empty between identical computations and total when all
// origins flip away.
func TestDiffProperties(t *testing.T) {
	g, err := topo.Generate(topo.Config{Tier1s: 4, Tier2s: 20, Stubs: 150, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	stubs := g.StubASNs()
	origins := []Origin{{Site: 0, Host: stubs[3]}, {Site: 1, Host: stubs[77]}}
	a := Compute(g, origins, nil)
	b := Compute(g, origins, nil)
	if d := Diff(a, b); len(d) != 0 {
		t.Errorf("identical tables diff = %d entries", len(d))
	}
	c := Compute(g, origins, []bool{true, false})
	d := Diff(a, c)
	for _, ch := range d {
		if ch.From != 1 {
			t.Errorf("unexpected change %+v; only site-1 users should move", ch)
		}
		if ch.To != 0 {
			t.Errorf("change %+v should land on site 0", ch)
		}
	}
	// Every former site-1 AS moved.
	want := a.CatchmentSizes(2)[1]
	if len(d) != want {
		t.Errorf("diff = %d changes, want %d", len(d), want)
	}
}

func TestRelClassString(t *testing.T) {
	if FromSelf.String() != "self" || FromCustomer.String() != "customer" ||
		FromPeer.String() != "peer" || FromProvider.String() != "provider" {
		t.Error("RelClass strings wrong")
	}
	if RelClass(9).String() != "RelClass(9)" {
		t.Error("unknown RelClass string wrong")
	}
}

func BenchmarkComputeFullTopology(b *testing.B) {
	g, err := topo.Generate(topo.DefaultConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	stubs := g.StubASNs()
	origins := make([]Origin, 33) // K-Root-sized deployment
	for i := range origins {
		origins[i] = Origin{Site: i, Host: stubs[i*37%len(stubs)]}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(g, origins, nil)
	}
}

func TestTraceFollowsForwarding(t *testing.T) {
	g := tinyGraph()
	tb := Compute(g, []Origin{{Site: 0, Host: 4}}, nil)
	// AS5 reaches site 0 via 3 -> 2 (peer) -> 4 or via 3 -> 1 -> 0 ...;
	// whatever the path, the trace must end at the origin's site.
	path, site := tb.Trace(5, 16)
	if site != 0 {
		t.Fatalf("trace site = %d, want 0 (path %v)", site, path)
	}
	if path[0] != 5 || len(path) < 2 {
		t.Fatalf("path = %v", path)
	}
	if path[len(path)-1] != 4 {
		t.Fatalf("path %v does not end at the origin host", path)
	}
	// The origin itself traces trivially.
	path, site = tb.Trace(4, 16)
	if site != 0 || len(path) != 1 {
		t.Fatalf("origin trace = %v site %d", path, site)
	}
}

func TestTraceNoRoute(t *testing.T) {
	g := tinyGraph()
	tb := Compute(g, []Origin{{Site: 0, Host: 4}}, []bool{false})
	path, site := tb.Trace(5, 16)
	if site != NoSite || len(path) != 1 {
		t.Fatalf("no-route trace = %v site %d", path, site)
	}
}

// Property: on a generated graph, traces agree with the routing table for
// (nearly) every AS; disagreements only arise from transient stale routes,
// which the stable three-phase computation does not produce for single
// origins.
func TestTraceAgreesWithTable(t *testing.T) {
	g, err := topo.Generate(topo.Config{Tier1s: 5, Tier2s: 40, Stubs: 400, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	stubs := g.StubASNs()
	origins := []Origin{
		{Site: 0, Host: stubs[3]},
		{Site: 1, Host: stubs[111]},
		{Site: 2, Host: stubs[222]},
	}
	tb := Compute(g, origins, nil)
	mismatches := 0
	for asn := 0; asn < g.N(); asn++ {
		want := tb.SiteOf(topo.ASN(asn))
		if want < 0 {
			continue
		}
		_, got := tb.Trace(topo.ASN(asn), 64)
		if got != want {
			mismatches++
		}
	}
	if frac := float64(mismatches) / float64(g.N()); frac > 0.02 {
		t.Errorf("trace/table mismatch at %.1f%% of ASes", frac*100)
	}
}
