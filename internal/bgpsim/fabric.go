package bgpsim

// Fabric is the runtime announce/withdraw bridge between a site controller
// and the routing simulation. Where Compute and Computer answer "what table
// do these announcements produce?", a Fabric holds the *current* announce
// state of a fixed origin set and lets a controller flip individual origins
// at runtime — each flip incrementally recomputes the table (warm-started,
// so the cost tracks the size of the routing change) and bumps a version
// counter observers can poll cheaply.

import (
	"fmt"
	"sync"

	"github.com/rootevent/anycastddos/internal/topo"
)

// Fabric is a mutable announce/withdraw view over a fixed origin set.
// It is safe for concurrent use; tables it returns are immutable snapshots.
type Fabric struct {
	mu      sync.Mutex
	comp    *Computer
	origins []Origin
	active  []bool
	table   *Table
	version uint64
}

// NewFabric builds a fabric for the given graph and origins, with every
// origin initially announced, and computes the initial table (version 1).
// The origin set is fixed for the fabric's lifetime: controllers flip
// announce state per origin index, they do not add or remove sites.
func NewFabric(g *topo.Graph, origins []Origin) *Fabric {
	f := &Fabric{
		comp:    NewComputer(g),
		origins: append([]Origin(nil), origins...),
		active:  make([]bool, len(origins)),
	}
	for i := range f.active {
		f.active[i] = true
	}
	f.table = f.comp.Compute(f.origins, f.active)
	f.version = 1
	return f
}

// NumOrigins returns the size of the fixed origin set.
func (f *Fabric) NumOrigins() int { return len(f.origins) }

// SetAnnounced flips origin index i to the given announce state. It
// returns true if the state changed (and the table was recomputed);
// flipping to the current state is a no-op. Out-of-range indices panic:
// the origin set is fixed, so a bad index is a controller bug.
func (f *Fabric) SetAnnounced(i int, announced bool) bool {
	if i < 0 || i >= len(f.origins) {
		panic(fmt.Sprintf("bgpsim: origin index %d out of range [0,%d)", i, len(f.origins))) //repolint:allow panic -- fixed origin set: a bad index is a controller bug, like a slice bound
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.active[i] == announced {
		return false
	}
	f.active[i] = announced
	f.table = f.comp.Compute(f.origins, f.active)
	f.version++
	return true
}

// Announce announces origin i; reports whether the state changed.
func (f *Fabric) Announce(i int) bool { return f.SetAnnounced(i, true) }

// Withdraw withdraws origin i; reports whether the state changed.
func (f *Fabric) Withdraw(i int) bool { return f.SetAnnounced(i, false) }

// Announced reports origin i's current announce state.
func (f *Fabric) Announced(i int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.active[i]
}

// AnnouncedCount returns how many origins are currently announced.
func (f *Fabric) AnnouncedCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, a := range f.active {
		if a {
			n++
		}
	}
	return n
}

// Table returns the current routing table snapshot. The table is never
// mutated after publication, so callers may hold it across flips (and
// compare it to later snapshots with Diff).
func (f *Fabric) Table() *Table {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.table
}

// Version returns the table version: 1 after construction, +1 per
// state-changing flip. Observers poll it to detect routing changes
// without diffing tables.
func (f *Fabric) Version() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.version
}

// CatchmentSizes returns the per-site catchment sizes of the current
// table, indexed by Origin.Site (which controllers conventionally assign
// densely as the origin index).
func (f *Fabric) CatchmentSizes() []int {
	f.mu.Lock()
	t := f.table
	f.mu.Unlock()
	maxSite := 0
	for _, o := range f.origins {
		if o.Site > maxSite {
			maxSite = o.Site
		}
	}
	return t.CatchmentSizes(maxSite + 1)
}

// SiteOf returns the site currently serving AS a, or NoSite.
func (f *Fabric) SiteOf(a topo.ASN) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.table.SiteOf(a)
}
