package bgpsim

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/rootevent/anycastddos/internal/topo"
)

// routesIdentical compares full Route values (unexported fields included):
// the Computer's contract is byte-identity with the reference Compute, not
// just matching site selections.
func routesIdentical(t *testing.T, ref, got *Table, label string) {
	t.Helper()
	if !reflect.DeepEqual(ref.Routes, got.Routes) {
		for i := range ref.Routes {
			if ref.Routes[i] != got.Routes[i] {
				t.Fatalf("%s: AS%d: reference %+v, computer %+v", label, i, ref.Routes[i], got.Routes[i])
			}
		}
		t.Fatalf("%s: tables differ", label)
	}
}

// testGraph generates a mid-size three-tier topology for equivalence runs.
func testGraph(t *testing.T, seed int64) *topo.Graph {
	t.Helper()
	g, err := topo.Generate(topo.Config{Tier1s: 5, Tier2s: 40, Stubs: 400, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// testOrigins places nSites anycast origins (some multi-uplink, some local)
// deterministically across the graph's stubs.
func testOrigins(g *topo.Graph, nSites int) []Origin {
	stubs := g.StubASNs()
	var origins []Origin
	for s := 0; s < nSites; s++ {
		uplinks := 1 + s%3
		for u := 0; u < uplinks; u++ {
			origins = append(origins, Origin{
				Site:  s,
				Host:  stubs[(s*101+u*37)%len(stubs)],
				Local: s%5 == 4,
			})
		}
	}
	return origins
}

func TestComputerMatchesReferenceColdStart(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		g := testGraph(t, seed)
		origins := testOrigins(g, 8)
		ref := Compute(g, origins, nil)
		got := NewComputer(g).Compute(origins, nil)
		routesIdentical(t, ref, got, "cold start")
	}
}

func TestComputerMatchesReferenceOnTinyGraph(t *testing.T) {
	g := tinyGraph()
	origins := []Origin{{Site: 0, Host: 4}, {Site: 1, Host: 5}, {Site: 2, Host: 6, Local: true}}
	c := NewComputer(g)
	// Every subset of active announcements, replayed in sequence on one
	// Computer so each step warm-starts from the previous subset.
	for mask := 0; mask < 1<<len(origins); mask++ {
		active := make([]bool, len(origins))
		for i := range active {
			active[i] = mask&(1<<i) != 0
		}
		ref := Compute(g, origins, active)
		got := c.Compute(origins, active)
		routesIdentical(t, ref, got, "subset mask")
	}
}

// TestComputerMatchesReferenceUnderFlapSequence replays a long random
// withdraw/re-announce sequence — the attack-window workload — and checks
// byte-identity at every step of the warm-started incremental fixpoint.
func TestComputerMatchesReferenceUnderFlapSequence(t *testing.T) {
	g := testGraph(t, 3)
	origins := testOrigins(g, 10)
	c := NewComputer(g)
	rng := rand.New(rand.NewSource(99))
	active := make([]bool, len(origins))
	for i := range active {
		active[i] = true
	}
	for step := 0; step < 60; step++ {
		// Flap one to three uplinks per step; occasionally revert to the
		// all-active vector (the cache-hit shape in the engine).
		if step%17 == 16 {
			for i := range active {
				active[i] = true
			}
		} else {
			for k := 0; k < 1+rng.Intn(3); k++ {
				i := rng.Intn(len(active))
				active[i] = !active[i]
			}
		}
		ref := Compute(g, origins, active)
		got := c.Compute(origins, active)
		routesIdentical(t, ref, got, "flap step")
	}
}

// TestComputerRepeatedVectorIsStable checks that recomputing an unchanged
// announcement vector returns the identical table (the warm path with an
// empty frontier) and that Reset forces a cold, still-identical recompute.
func TestComputerRepeatedVectorIsStable(t *testing.T) {
	g := testGraph(t, 5)
	origins := testOrigins(g, 6)
	c := NewComputer(g)
	first := c.Compute(origins, nil)
	second := c.Compute(origins, nil)
	routesIdentical(t, first, second, "repeat")
	c.Reset()
	cold := c.Compute(origins, nil)
	routesIdentical(t, first, cold, "after Reset")
}

// TestComputerSteadyStateAllocations pins the allocation contract: a warm
// recompute allocates only the returned table (routes slice + header),
// regardless of how much of the graph the change touches.
func TestComputerSteadyStateAllocations(t *testing.T) {
	g := testGraph(t, 11)
	origins := testOrigins(g, 8)
	c := NewComputer(g)
	active := make([]bool, len(origins))
	for i := range active {
		active[i] = true
	}
	c.Compute(origins, active) // warm up scratch growth
	toggle := 0
	allocs := testing.AllocsPerRun(20, func() {
		active[toggle] = !active[toggle]
		toggle = (toggle + 1) % len(origins)
		c.Compute(origins, active)
	})
	if allocs > 2 {
		t.Errorf("warm Compute allocates %.0f objects per call, want <= 2 (result table only)", allocs)
	}
}

func TestAppendDiffMatchesDiff(t *testing.T) {
	g := testGraph(t, 2)
	origins := testOrigins(g, 6)
	before := Compute(g, origins, nil)
	active := make([]bool, len(origins))
	for i := range active {
		active[i] = i != 0
	}
	after := Compute(g, origins, active)
	ref := Diff(before, after)
	buf := make([]Change, 0, 4)
	got := AppendDiff(buf[:0], before, after)
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("AppendDiff = %v, want %v", got, ref)
	}
	// Appending after existing contents preserves them.
	prefixed := AppendDiff([]Change{{ASN: 0, From: 1, To: 2}}, before, after)
	if len(prefixed) != len(ref)+1 || !reflect.DeepEqual(prefixed[1:], ref) {
		t.Fatalf("AppendDiff did not append after existing contents")
	}
}

func TestCatchmentSizesInto(t *testing.T) {
	g := tinyGraph()
	tb := Compute(g, []Origin{{Site: 0, Host: 4}, {Site: 1, Host: 5}}, nil)
	ref := tb.CatchmentSizes(2)
	buf := []int{99, 99}
	got := tb.CatchmentSizesInto(buf)
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("CatchmentSizesInto = %v, want %v", got, ref)
	}
	if &buf[0] != &got[0] {
		t.Fatal("CatchmentSizesInto did not reuse the caller's buffer")
	}
}
