package bgpsim

import (
	"testing"

	"github.com/rootevent/anycastddos/internal/topo"
)

func fabricFixture(t *testing.T) (*topo.Graph, []Origin, *Fabric) {
	t.Helper()
	g, err := topo.Generate(topo.Config{Tier1s: 4, Tier2s: 25, Stubs: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	origins := []Origin{
		{Site: 0, Host: 0},
		{Site: 1, Host: 1},
		{Site: 2, Host: 2},
	}
	return g, origins, NewFabric(g, origins)
}

func TestFabricMatchesReferenceCompute(t *testing.T) {
	g, origins, f := fabricFixture(t)
	if f.Version() != 1 || f.AnnouncedCount() != 3 {
		t.Fatalf("fresh fabric: version %d, announced %d", f.Version(), f.AnnouncedCount())
	}
	// Every announce-state the controller can reach must match the
	// reference Compute for the same active vector.
	check := func(active []bool) {
		t.Helper()
		want := Compute(g, origins, active)
		got := f.Table()
		if len(got.Routes) != len(want.Routes) {
			t.Fatalf("table size %d vs %d", len(got.Routes), len(want.Routes))
		}
		for a := range want.Routes {
			if got.Routes[a].Site != want.Routes[a].Site {
				t.Fatalf("active=%v: AS %d routed to %d, reference says %d",
					active, a, got.Routes[a].Site, want.Routes[a].Site)
			}
		}
	}
	check([]bool{true, true, true})

	if !f.Withdraw(1) {
		t.Fatal("withdraw of an announced origin reported no change")
	}
	check([]bool{true, false, true})
	if f.AnnouncedCount() != 2 || f.Announced(1) {
		t.Fatalf("withdraw state: count %d, announced(1)=%v", f.AnnouncedCount(), f.Announced(1))
	}

	if !f.Announce(1) {
		t.Fatal("re-announce reported no change")
	}
	check([]bool{true, true, true})
	if f.Version() != 3 {
		t.Fatalf("version after two flips: %d", f.Version())
	}
}

func TestFabricIdempotentFlips(t *testing.T) {
	_, _, f := fabricFixture(t)
	before := f.Table()
	if f.Announce(0) {
		t.Fatal("announcing an announced origin reported a change")
	}
	if f.Withdraw(2) != true || f.Withdraw(2) != false {
		t.Fatal("double withdraw: second flip must be a no-op")
	}
	if f.Version() != 2 {
		t.Fatalf("no-op flips bumped version: %d", f.Version())
	}
	// Published snapshots are stable across later flips.
	if before.SiteOf(0) == NoSite {
		t.Fatal("held snapshot mutated")
	}
}

func TestFabricCatchmentShiftsOnWithdraw(t *testing.T) {
	_, _, f := fabricFixture(t)
	before := f.CatchmentSizes()
	if before[1] == 0 {
		t.Skip("site 1 attracted no ASes on this graph; fixture needs a new seed")
	}
	f.Withdraw(1)
	after := f.CatchmentSizes()
	if after[1] != 0 {
		t.Fatalf("withdrawn site still serves %d ASes", after[1])
	}
	if after[0]+after[2] < before[0]+before[2] {
		t.Fatalf("catchment shrank instead of shifting: %v -> %v", before, after)
	}
	// The withdrawn site's old clients now route elsewhere (or nowhere);
	// SiteOf agrees with the table snapshot.
	tbl := f.Table()
	for a := range tbl.Routes {
		if tbl.Routes[a].Site == 1 {
			t.Fatalf("AS %d still routed to withdrawn site", a)
		}
		if f.SiteOf(topo.ASN(a)) != tbl.Routes[a].Site {
			t.Fatalf("SiteOf(%d) disagrees with snapshot", a)
		}
	}
}

func TestFabricOutOfRangePanics(t *testing.T) {
	_, _, f := fabricFixture(t)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range origin index did not panic")
		}
	}()
	f.Withdraw(99)
}
