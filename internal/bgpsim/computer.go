package bgpsim

import (
	"github.com/rootevent/anycastddos/internal/topo"
)

// Computer computes routing tables for one graph with reusable scratch
// state, so the per-epoch cost of a routing engine tracks the size of the
// routing *change*, not the size of the Internet.
//
// Three mechanisms stack on top of the reference Compute:
//
//   - Dense scratch: ASNs are dense indices 0..N-1, so the per-AS seed and
//     NO_EXPORT-advert lists live in slice-indexed buffers owned by the
//     Computer instead of per-call maps. Repeated Compute calls on the
//     same graph allocate nothing beyond the returned Table.
//   - Frontier fixpoint: each synchronous round re-evaluates only ASes
//     whose inputs (own announcements or a neighbor's route) changed in
//     the previous round, in ascending-ASN order. An AS with unchanged
//     inputs would recompute the identical best route, so skipping it is
//     exact: the fixpoint is byte-identical to the full sweep's.
//   - Warm start: the fixpoint is seeded from the previous call's
//     converged state, with only the ASes whose announcements changed
//     since that call on the initial frontier. Route selection is a
//     strict preference order (Gao-Rexford class, path length, per-AS tie
//     rank), so the stable solution is unique and the warm-started
//     iteration converges to the same table a cold start produces.
//
// A Computer is bound to its graph, which must not be mutated, and is not
// safe for concurrent use; give each goroutine its own instance.
type Computer struct {
	g *topo.Graph
	n int

	// cur holds the converged pre-default fixpoint between calls (the warm
	// start state); next is the in-round evaluation buffer.
	cur, next []Route

	// Announcement scratch, double-buffered so each call can diff its
	// announcements against the previous call's. seeds/localAdverts are
	// dense by ASN; touched lists which entries are non-empty.
	seeds, prevSeeds     [][]Route
	adverts, prevAdverts [][]Route
	touched, prevTouched []topo.ASN

	// Frontier state: dirty marks ASes to evaluate this round, nextDirty
	// collects the ASes whose inputs the current round invalidated.
	dirty, nextDirty []bool
	dirtyCount       int

	// defState is resolveDefaults' visit-state scratch.
	defState []uint8

	// warm reports whether cur holds a previous fixpoint to start from.
	warm bool
}

// NewComputer returns a Computer for the given graph.
func NewComputer(g *topo.Graph) *Computer {
	n := g.N()
	c := &Computer{
		g:           g,
		n:           n,
		cur:         make([]Route, n),
		next:        make([]Route, n),
		seeds:       make([][]Route, n),
		prevSeeds:   make([][]Route, n),
		adverts:     make([][]Route, n),
		prevAdverts: make([][]Route, n),
		dirty:       make([]bool, n),
		nextDirty:   make([]bool, n),
		defState:    make([]uint8, n),
	}
	return c
}

// Reset drops the warm-start state; the next Compute runs a cold, full
// fixpoint (still without allocating).
func (c *Computer) Reset() { c.warm = false }

// Compute returns the routing table for the given announcements, exactly as
// the package-level Compute would, reusing the Computer's scratch and
// warm-starting from the previous call's fixpoint. active reports whether
// each origins entry is currently announced; nil means all are active.
func (c *Computer) Compute(origins []Origin, active []bool) *Table {
	c.buildAnnouncements(origins, active)

	if !c.warm {
		// Cold start: every AS is on the initial frontier and the state is
		// all-NoSite, which makes round 0 the reference full sweep.
		for i := range c.cur {
			c.cur[i] = Route{Site: NoSite}
		}
		c.dirtyCount = 0
		for asn := 0; asn < c.n; asn++ {
			c.markDirty(topo.ASN(asn))
		}
		c.warm = true
	} else {
		// Warm start: only ASes whose own announcements changed since the
		// previous call seed the frontier; everything else re-enters the
		// iteration when (and only when) a neighbor's route changes.
		c.seedFrontierFromDiff()
	}

	c.iterate()

	out := make([]Route, c.n)
	copy(out, c.cur)
	for i := range c.defState {
		c.defState[i] = 0
	}
	resolveDefaultsInto(c.g, out, c.defState)
	return &Table{Routes: out}
}

// buildAnnouncements fills the dense per-AS seed and NO_EXPORT-advert lists
// for this call, preserving the previous call's lists for diffing. Entry
// construction order matches the reference Compute exactly (origins in
// index order, then each local origin's customers in adjacency order):
// route selection keeps the incumbent on exact ties, so consideration
// order is part of the result.
func (c *Computer) buildAnnouncements(origins []Origin, active []bool) {
	c.seeds, c.prevSeeds = c.prevSeeds, c.seeds
	c.adverts, c.prevAdverts = c.prevAdverts, c.adverts
	c.touched, c.prevTouched = c.prevTouched, c.touched

	for _, a := range c.touched {
		c.seeds[a] = c.seeds[a][:0]
		c.adverts[a] = c.adverts[a][:0]
	}
	c.touched = c.touched[:0]

	touch := func(a topo.ASN) {
		if len(c.seeds[a]) == 0 && len(c.adverts[a]) == 0 {
			c.touched = append(c.touched, a)
		}
	}
	for i, o := range origins {
		if active != nil && !active[i] {
			continue
		}
		touch(o.Host)
		c.seeds[o.Host] = append(c.seeds[o.Host], Route{
			Site: o.Site, PathLen: 0, Class: FromSelf, NextHop: o.Host, origin: i, noExport: o.Local,
		})
		if o.Local {
			host := c.g.AS(o.Host)
			for _, cust := range host.Customers {
				touch(cust)
				c.adverts[cust] = append(c.adverts[cust], Route{
					Site: o.Site, PathLen: 1, Class: FromProvider, NextHop: o.Host, origin: i, noExport: true,
				})
			}
		}
	}
}

// seedFrontierFromDiff marks every AS whose seed or advert list differs
// from the previous call's as dirty.
func (c *Computer) seedFrontierFromDiff() {
	c.dirtyCount = 0
	for _, a := range c.touched {
		if !routesEqual(c.seeds[a], c.prevSeeds[a]) || !routesEqual(c.adverts[a], c.prevAdverts[a]) {
			c.markDirty(a)
		}
	}
	for _, a := range c.prevTouched {
		if !routesEqual(c.seeds[a], c.prevSeeds[a]) || !routesEqual(c.adverts[a], c.prevAdverts[a]) {
			c.markDirty(a)
		}
	}
}

// routesEqual reports element-wise equality of two route lists.
//
//repolint:hot
func routesEqual(a, b []Route) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// markDirty adds an AS to the pending frontier (idempotent).
//
//repolint:hot
func (c *Computer) markDirty(a topo.ASN) {
	if !c.dirty[a] {
		c.dirty[a] = true
		c.dirtyCount++
	}
}

// iterate runs the synchronous path-vector fixpoint over the dirty
// frontier. Each round evaluates the frontier in ascending-ASN order
// against the previous round's state (two-phase: evaluate, then commit),
// which reproduces the reference full sweep's simultaneous-update
// semantics; a committed change re-enqueues every neighbor that reads the
// changed route.
//
//repolint:hot
func (c *Computer) iterate() {
	const maxRounds = 128
	for round := 0; round < maxRounds && c.dirtyCount > 0; round++ {
		// Phase 1: evaluate the frontier against the pre-round state.
		remaining := c.dirtyCount
		for asn := 0; asn < c.n && remaining > 0; asn++ {
			if !c.dirty[asn] {
				continue
			}
			remaining--
			c.next[asn] = c.evaluate(topo.ASN(asn))
		}
		// Phase 2: commit changes and build the next frontier.
		nextCount := 0
		for asn := 0; asn < c.n; asn++ {
			if !c.dirty[asn] {
				continue
			}
			c.dirty[asn] = false
			if c.next[asn] == c.cur[asn] {
				continue
			}
			c.cur[asn] = c.next[asn]
			node := c.g.AS(topo.ASN(asn))
			for _, nb := range node.Providers {
				if !c.nextDirty[nb] {
					c.nextDirty[nb] = true
					nextCount++
				}
			}
			for _, nb := range node.Peers {
				if !c.nextDirty[nb] {
					c.nextDirty[nb] = true
					nextCount++
				}
			}
			for _, nb := range node.Customers {
				if !c.nextDirty[nb] {
					c.nextDirty[nb] = true
					nextCount++
				}
			}
		}
		c.dirty, c.nextDirty = c.nextDirty, c.dirty
		c.dirtyCount = nextCount
	}
	// A frontier still pending after maxRounds means the graph did not
	// converge (impossible under Gao-Rexford preferences); drop it so the
	// next call starts from a consistent, if truncated, state — the same
	// cutoff behaviour as the reference Compute.
	if c.dirtyCount > 0 {
		for asn := range c.dirty {
			c.dirty[asn] = false
		}
		c.dirtyCount = 0
	}
}

// evaluate selects an AS's best route from its own announcements and its
// neighbors' current routes, in the reference Compute's exact
// consideration order.
//
//repolint:hot
func (c *Computer) evaluate(a topo.ASN) Route {
	best := Route{Site: NoSite}
	for _, r := range c.seeds[a] {
		if better(a, r, best) {
			best = r
		}
	}
	for _, r := range c.adverts[a] {
		if better(a, r, best) {
			best = r
		}
	}
	node := c.g.AS(a)
	for _, cn := range node.Customers {
		r := c.cur[cn]
		if !r.Valid() || r.noExport || r.Class > FromCustomer {
			continue
		}
		cand := Route{Site: r.Site, PathLen: nextLen(r.PathLen), Class: FromCustomer, NextHop: cn, origin: r.origin}
		if better(a, cand, best) {
			best = cand
		}
	}
	for _, p := range node.Peers {
		r := c.cur[p]
		if !r.Valid() || r.noExport || r.Class > FromCustomer {
			continue
		}
		cand := Route{Site: r.Site, PathLen: nextLen(r.PathLen), Class: FromPeer, NextHop: p, origin: r.origin}
		if better(a, cand, best) {
			best = cand
		}
	}
	for _, p := range node.Providers {
		r := c.cur[p]
		if !r.Valid() || r.noExport {
			continue
		}
		cand := Route{Site: r.Site, PathLen: nextLen(r.PathLen), Class: FromProvider, NextHop: p, origin: r.origin}
		if better(a, cand, best) {
			best = cand
		}
	}
	return best
}
